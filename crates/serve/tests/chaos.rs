//! Chaos end-to-end tests: the serving subsystem under armed fault plans
//! and hostile checkpoints.
//!
//! The `unimatch-faults` plane injects latency at the ANN-search and
//! batcher seams while concurrent clients hammer the server; the
//! contracts under test are the graceful-degradation guarantees:
//!
//! * **no corrupt success**: every `200` body is byte-identical to a
//!   direct in-process call — a fault may slow or shed a request, never
//!   silently alter its payload;
//! * **bounded, typed failure**: overload answers are `429`/`503` with a
//!   `Retry-After` header, and the error rate stays bounded;
//! * **old model keeps serving**: a corrupt checkpoint fed to `/reload`
//!   errors without failing a single in-flight request;
//! * **observable**: `/metrics` exposes the shed counters and the fault
//!   plane's fire count in the same scrape;
//! * **clean drain**: shutdown under chaos still answers everything
//!   admitted and closes the port.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;
use unimatch_core::persist::{save_checkpoint_with_table, save_model, table_path};
use unimatch_core::{ModelHandle, RowFormat, UniMatch, UniMatchConfig};
use unimatch_data::{DatasetProfile, InteractionLog};
use unimatch_faults::{FaultKind, FaultPlan, FaultRule};
use unimatch_serve::{recommend_body, target_body, ServeConfig, Server};

/// Serializes the tests in this binary: an armed fault plan is process
/// state, and a plan one test arms must not bleed into another's server.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One fitted model, saved once and shared by every test (fitting is the
/// expensive part; each test builds its own cheap `ModelHandle` over it).
struct Fixture {
    dir: PathBuf,
    checkpoint: PathBuf,
    log: InteractionLog,
    cfg: UniMatchConfig,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("unimatch_serve_chaos_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let log = DatasetProfile::EComp.generate(0.12, 17).filter_min_interactions(3);
        let cfg = UniMatchConfig { max_seq_len: 8, epochs_per_month: 1, ..Default::default() };
        let fitted = UniMatch::new(cfg.clone()).fit(log.clone());
        let checkpoint = dir.join("model.json");
        save_model(&fitted.model, &checkpoint).expect("save fixture checkpoint");
        Fixture { dir, checkpoint, log, cfg }
    })
}

fn fresh_handle() -> Arc<ModelHandle> {
    let f = fixture();
    Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(f.cfg.clone()), &f.checkpoint, f.log.clone())
            .expect("fixture checkpoint loads"),
    )
}

/// One HTTP/1.1 request over a fresh connection; returns
/// `(status, head, body)` so callers can assert on headers too.
fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send head");
    stream.write_all(body).expect("send body");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body separator");
    let head = std::str::from_utf8(&response[..head_end]).expect("utf8 head").to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code in status line");
    (status, head, response[head_end + 4..].to_vec())
}

/// Reads the value of a single-sample metric line (`name value` or
/// `name{labels} value`).
fn metric_value(metrics: &str, prefix: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {prefix} missing from:\n{metrics}"))
}

#[test]
fn full_queue_sheds_429_with_retry_after() {
    let _guard = fault_lock();
    unimatch_faults::clear();
    let server = Server::start(
        "127.0.0.1:0",
        fresh_handle(),
        ServeConfig {
            batch_window: Duration::from_millis(1),
            queue_bound: 0, // drain mode: shed every query request
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let (status, head, body) =
        request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
    assert_eq!(status, 429, "{}", String::from_utf8_lossy(&body));
    assert!(head.contains("Retry-After: 1"), "429 must carry Retry-After:\n{head}");
    assert!(String::from_utf8_lossy(&body).contains("admission queue full"));
    let (status, head, _) = request(&addr, "POST", "/target", b"{\"item\":1,\"k\":5}");
    assert_eq!(status, 429);
    assert!(head.contains("Retry-After: 1"));

    // non-queued routes are unaffected by drain mode
    let (status, _, _) = request(&addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);

    let (status, _, metrics) = request(&addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).expect("utf8 metrics");
    assert!(
        metric_value(&metrics, "unimatch_requests_shed_total{reason=\"queue_full\"}") >= 2.0,
        "shed counter must record both rejections"
    );
    drop(server);
    assert!(TcpStream::connect(&addr).is_err(), "server still accepting after shutdown");
}

#[test]
fn queued_past_deadline_answers_503_with_retry_after() {
    let _guard = fault_lock();
    // Every batch stalls 150 ms at the batcher seam; the request deadline
    // is 20 ms, so every admitted job expires in the queue.
    unimatch_faults::set_plan(FaultPlan {
        seed: 41,
        rules: vec![FaultRule::new("serve.batch", FaultKind::LatencyUs(150_000))
            .with_probability(1.0)],
    });
    let handle = fresh_handle();
    let server = Server::start(
        "127.0.0.1:0",
        handle.clone(),
        ServeConfig {
            batch_window: Duration::from_millis(1),
            request_deadline: Duration::from_millis(20),
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let (status, head, body) =
        request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
    assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
    assert!(head.contains("Retry-After: 1"), "503 must carry Retry-After:\n{head}");
    assert!(String::from_utf8_lossy(&body).contains("deadline"));

    // scraped while armed: the shed and fault counters share the scrape
    let (status, _, metrics) = request(&addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).expect("utf8 metrics");
    assert!(metric_value(&metrics, "unimatch_requests_shed_total{reason=\"deadline\"}") >= 1.0);
    assert!(metric_value(&metrics, "unimatch_faults_fired_total") >= 1.0);

    // disarm: the same request is answered normally and byte-identically
    unimatch_faults::clear();
    let expected = recommend_body(5, &handle.current().fitted.recommend_items(&[1, 2, 3], 5));
    let (status, _, got) = request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
    assert_eq!(status, 200);
    assert_eq!(got, expected, "post-chaos response must be byte-identical");
    drop(server);
}

#[test]
fn latency_storm_never_corrupts_a_success() {
    let _guard = fault_lock();
    // Faults at both serving seams: every ANN search and half of all
    // batches pick up injected latency. Small enough that requests finish
    // inside the (default 2 s) deadline — the contract under test is that
    // slowed is never wrong.
    unimatch_faults::set_plan(FaultPlan {
        seed: 42,
        rules: vec![
            FaultRule::new("ann.search", FaultKind::LatencyUs(2_000)).with_probability(1.0),
            FaultRule::new("serve.batch", FaultKind::LatencyUs(2_000)).with_probability(0.5),
        ],
    });
    let handle = fresh_handle();
    let server = Server::start(
        "127.0.0.1:0",
        handle.clone(),
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let fitted = handle.current();
    let num_items = fitted.fitted.num_items() as u32;

    let mut clients = Vec::new();
    let errors = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let successes = Arc::new(std::sync::atomic::AtomicU64::new(0));
    for t in 0..6u32 {
        let addr = addr.clone();
        let errors = errors.clone();
        let successes = successes.clone();
        let history: Vec<u32> = (0..3).map(|j| (t * 3 + j) % num_items).collect();
        let k = 3 + (t as usize % 3);
        let item = (t * 5) % num_items;
        let expected_rec = recommend_body(k, &fitted.fitted.recommend_items(&history, k));
        let expected_tgt = target_body(k, &fitted.fitted.target_users(item, k));
        clients.push(std::thread::spawn(move || {
            for round in 0..6 {
                let (path, body, expected) = if round % 2 == 0 {
                    let ids: Vec<String> = history.iter().map(u32::to_string).collect();
                    (
                        "/recommend",
                        format!("{{\"history\":[{}],\"k\":{k}}}", ids.join(",")),
                        &expected_rec,
                    )
                } else {
                    ("/target", format!("{{\"item\":{item},\"k\":{k}}}"), &expected_tgt)
                };
                let (status, head, got) = request(&addr, "POST", path, body.as_bytes());
                match status {
                    200 => {
                        successes.fetch_add(1, Ordering::Relaxed);
                        assert_eq!(
                            &got, expected,
                            "client {t} round {round}: 200 payload corrupted under faults"
                        );
                    }
                    429 | 503 => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        assert!(
                            head.contains("Retry-After: 1"),
                            "shed response without Retry-After:\n{head}"
                        );
                    }
                    other => panic!(
                        "client {t} round {round}: unexpected status {other}: {}",
                        String::from_utf8_lossy(&got)
                    ),
                }
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
    let successes = successes.load(Ordering::Relaxed);
    let errors = errors.load(Ordering::Relaxed);
    assert_eq!(successes + errors, 36, "every request must be answered");
    assert!(successes > 0, "the storm must not starve the server entirely");
    assert!(errors * 4 <= 36, "error rate unbounded: {errors}/36 shed");

    // faults demonstrably fired, and the scrape carries the evidence
    let (status, _, metrics) = request(&addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).expect("utf8 metrics");
    assert!(metric_value(&metrics, "unimatch_faults_fired_total") >= 18.0);
    assert!(metric_value(&metrics, "unimatch_requests_shed_total{reason=\"queue_full\"}") >= 0.0);
    unimatch_faults::clear();

    // clean drain with the port closed behind it
    drop(server);
    assert!(TcpStream::connect(&addr).is_err(), "server still accepting after shutdown");
}

#[test]
fn latency_storm_with_rerank_chain_keeps_seeded_byte_identity() {
    let _guard = fault_lock();
    // Same storm as above, but with a re-ranking chain armed: a slowed
    // request must still produce the exact bytes the seeded chain pins —
    // injected latency must never perturb debias/MMR/exploration.
    unimatch_faults::set_plan(FaultPlan {
        seed: 43,
        rules: vec![
            FaultRule::new("ann.search", FaultKind::LatencyUs(2_000)).with_probability(1.0),
            FaultRule::new("serve.batch", FaultKind::LatencyUs(2_000)).with_probability(0.5),
        ],
    });
    let f = fixture();
    let cfg = UniMatchConfig {
        rerank: unimatch_core::RerankConfig {
            spec: "debias@0.5,mmr@0.3,explore@0.2".to_string(),
            rules: None,
        },
        ..f.cfg.clone()
    };
    let handle = Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(cfg), &f.checkpoint, f.log.clone())
            .expect("fixture checkpoint loads with a chain armed"),
    );
    let server = Server::start(
        "127.0.0.1:0",
        handle.clone(),
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let fitted = handle.current();
    let num_items = fitted.fitted.num_items() as u32;

    let mut clients = Vec::new();
    for t in 0..4u32 {
        let addr = addr.clone();
        let history: Vec<u32> = (0..3).map(|j| (t * 3 + j) % num_items).collect();
        let k = 3 + (t as usize % 3);
        let item = (t * 5) % num_items;
        let expected_rec = recommend_body(k, &fitted.fitted.recommend_items(&history, k));
        let expected_tgt = target_body(k, &fitted.fitted.target_users(item, k));
        clients.push(std::thread::spawn(move || {
            for round in 0..6 {
                let (path, body, expected) = if round % 2 == 0 {
                    let ids: Vec<String> = history.iter().map(u32::to_string).collect();
                    (
                        "/recommend",
                        format!("{{\"history\":[{}],\"k\":{k}}}", ids.join(",")),
                        &expected_rec,
                    )
                } else {
                    ("/target", format!("{{\"item\":{item},\"k\":{k}}}"), &expected_tgt)
                };
                let (status, _, got) = request(&addr, "POST", path, body.as_bytes());
                match status {
                    200 => assert_eq!(
                        &got, expected,
                        "client {t} round {round}: chained payload diverged under faults"
                    ),
                    429 | 503 => {}
                    other => panic!("client {t} round {round}: unexpected status {other}"),
                }
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }
    unimatch_faults::clear();

    // disarmed, the identical request still returns the identical bytes —
    // the chain's seed stream has no dependence on the fault plane
    let history = [0u32, 1, 2];
    let expected = recommend_body(3, &fitted.fitted.recommend_items(&history, 3));
    let (status, _, got) = request(&addr, "POST", "/recommend", b"{\"history\":[0,1,2],\"k\":3}");
    assert_eq!(status, 200);
    assert_eq!(got, expected, "post-chaos chained response must be byte-identical");
    drop(server);
}

#[test]
fn corrupt_reload_under_live_traffic_keeps_old_version_serving() {
    let _guard = fault_lock();
    unimatch_faults::clear();
    let f = fixture();
    let handle = fresh_handle();
    let server = Server::start(
        "127.0.0.1:0",
        handle.clone(),
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let expected = recommend_body(5, &handle.current().fitted.recommend_items(&[1, 2, 3], 5));

    // two corrupt checkpoints: a truncated file and a checksum-tampered one
    let bytes = std::fs::read(&f.checkpoint).expect("read fixture checkpoint");
    let truncated_path = f.dir.join("truncated.json");
    std::fs::write(&truncated_path, &bytes[..bytes.len() / 2]).expect("write truncated");
    let text = String::from_utf8(bytes).expect("utf8 checkpoint");
    let pos = text.find("\"checksum\":\"").expect("checksum field") + "\"checksum\":\"".len();
    let mut tampered = text.into_bytes();
    tampered[pos] = if tampered[pos] == b'0' { b'1' } else { b'0' };
    let tampered_path = f.dir.join("tampered.json");
    std::fs::write(&tampered_path, &tampered).expect("write tampered");

    // live traffic for the whole reload sequence: every response must be a
    // healthy 200 with an uncorrupted payload
    let stop = Arc::new(AtomicBool::new(false));
    let mut hammers = Vec::new();
    for _ in 0..2 {
        let (addr, stop, expected) = (addr.clone(), stop.clone(), expected.clone());
        hammers.push(std::thread::spawn(move || {
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (status, _, got) =
                    request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
                assert_eq!(
                    status,
                    200,
                    "in-flight request failed during corrupt reload: {}",
                    String::from_utf8_lossy(&got)
                );
                assert_eq!(got, expected, "in-flight payload corrupted during reload");
                served += 1;
            }
            served
        }));
    }

    for corrupt in [&truncated_path, &tampered_path] {
        let body = format!("{{\"checkpoint\":{:?}}}", corrupt.to_str().expect("utf8 path"));
        let (status, _, reply) = request(&addr, "POST", "/reload", body.as_bytes());
        assert_eq!(
            status,
            500,
            "corrupt checkpoint must be rejected: {}",
            String::from_utf8_lossy(&reply)
        );
        let (status, _, health) = request(&addr, "GET", "/healthz", b"");
        assert_eq!(status, 200);
        assert!(
            String::from_utf8_lossy(&health).contains("\"version\":1"),
            "failed reload must leave version 1 serving"
        );
    }

    stop.store(true, Ordering::Relaxed);
    let served: u64 = hammers.into_iter().map(|h| h.join().expect("hammer thread")).sum();
    assert!(served > 0, "no traffic flowed during the reload sequence");

    // a valid checkpoint still swaps in afterwards
    let body = format!("{{\"checkpoint\":{:?}}}", f.checkpoint.to_str().expect("utf8 path"));
    let (status, _, reply) = request(&addr, "POST", "/reload", body.as_bytes());
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&reply));
    assert!(String::from_utf8_lossy(&reply).contains("\"version\":2"));

    let (status, _, metrics) = request(&addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).expect("utf8 metrics");
    assert_eq!(
        metric_value(&metrics, "unimatch_reloads_total"),
        1.0,
        "only the successful reload may count"
    );
    assert!(metric_value(&metrics, "unimatch_responses_total{class=\"5xx\"}") >= 2.0);
    drop(server);
}

#[test]
fn corrupt_quantized_table_reload_keeps_old_version_serving() {
    let _guard = fault_lock();
    unimatch_faults::clear();
    let f = fixture();
    // serve quantized + mmap'd: the loader derives an i8 sidecar from the
    // plain fixture checkpoint and maps it
    let cfg = UniMatchConfig { store: RowFormat::I8, mmap: true, ..f.cfg.clone() };
    let handle = Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(cfg), &f.checkpoint, f.log.clone())
            .expect("fixture checkpoint loads quantized"),
    );
    let server = Server::start(
        "127.0.0.1:0",
        handle.clone(),
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let expected = recommend_body(5, &handle.current().fitted.recommend_items(&[1, 2, 3], 5));

    let (status, _, health) = request(&addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let health = String::from_utf8_lossy(&health).to_string();
    assert!(health.contains("\"store\":\"i8\""), "healthz must report the store format:\n{health}");
    assert!(health.contains("\"backing\":\"mmap\""), "healthz must report the backing:\n{health}");

    // a v2 checkpoint with an *advertised* i8 sidecar, then corrupt the
    // sidecar: the reload must validate the table and refuse the swap
    let cur = handle.current();
    let qpath = f.dir.join("quantized.json");
    save_checkpoint_with_table(&cur.fitted.model, Some(cur.fitted.marginals()), cur.fitted.item_store(), &qpath)
        .expect("save quantized checkpoint");
    let sidecar = table_path(&qpath, RowFormat::I8);
    let good = std::fs::read(&sidecar).expect("read sidecar");
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x10;
    std::fs::write(&sidecar, &bad).expect("write corrupt sidecar");

    let body = format!("{{\"checkpoint\":{:?}}}", qpath.to_str().expect("utf8 path"));
    let (status, _, reply) = request(&addr, "POST", "/reload", body.as_bytes());
    assert_eq!(
        status,
        500,
        "corrupt quantized table must be rejected: {}",
        String::from_utf8_lossy(&reply)
    );

    // the old mmap'd version keeps serving, byte-identically
    let (status, _, health) = request(&addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let health = String::from_utf8_lossy(&health).to_string();
    assert!(health.contains("\"version\":1"), "failed reload must leave version 1:\n{health}");
    assert!(health.contains("\"backing\":\"mmap\""));
    let (status, _, got) = request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
    assert_eq!(status, 200);
    assert_eq!(got, expected, "payload must survive the rejected reload untouched");

    // restoring the sidecar lets the identical reload succeed
    std::fs::write(&sidecar, &good).expect("restore sidecar");
    let (status, _, reply) = request(&addr, "POST", "/reload", body.as_bytes());
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&reply));
    assert!(String::from_utf8_lossy(&reply).contains("\"version\":2"));
    let (status, _, got) = request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
    assert_eq!(status, 200);
    assert_eq!(got, expected, "same params reloaded must answer byte-identically");
    drop(server);
}
