//! The TCP accept loop, request routing, and lifecycle management.
//!
//! ```text
//!        TCP accept (cap)        admission queues          batched execution
//! client ──► connection thread ──► RecommendJob/TargetJob ──► batcher thread ──► reply
//!                │                                               │
//!                └── /reload, /healthz, /metrics ── ModelHandle ─┘  (hot-swap snapshot)
//! ```
//!
//! Endpoints:
//!
//! | route | method | body | reply |
//! |---|---|---|---|
//! | `/recommend` | POST | `{"history":[ids],"k":N}` | `{"k":N,"items":[{"id","score"}]}` |
//! | `/target` | POST | `{"item":id,"k":N}` | `{"k":N,"users":[{"id","score"}]}` |
//! | `/reload` | POST | `{}` or `{"checkpoint":"path"}` | `{"version":N,"checkpoint":"path"}` |
//! | `/healthz` | GET | — | `{"status":"ok","version":N,…}` |
//! | `/metrics` | GET | — | text exposition |
//!
//! All ids are the dense internal universe (the CLI persists the external
//! ↔ dense vocabularies next to the checkpoint for translation).

use crate::batcher::{
    run_recommend_batcher, run_target_batcher, BatchConfig, JobError, RecommendJob, TargetJob,
};
use crate::http::{read_request, write_response, write_response_with, HttpError, Request};
use crate::metrics::{Metrics, Route};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use unimatch_ann::Hit;
use unimatch_core::ModelHandle;
use unimatch_data::json::Json;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Micro-batching window: how long an admitted request may wait for
    /// co-travellers before its batch executes.
    pub batch_window: Duration,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Capacity of the user-history embedding LRU cache (0 disables).
    pub cache_capacity: usize,
    /// Maximum concurrently served connections; excess connections are
    /// answered `503` immediately instead of queueing without bound.
    pub max_connections: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Maximum jobs queued per route ahead of the batcher; requests
    /// arriving with the queue at this bound are shed with `429` and a
    /// `Retry-After` header instead of joining an unserviceable backlog.
    /// `0` sheds every query request — a drain mode, also useful in tests.
    pub queue_bound: usize,
    /// Per-request deadline through the admission queue: jobs the batcher
    /// dequeues after this much waiting are answered `503` (with
    /// `Retry-After`) instead of executed for a client that gave up.
    pub request_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_window: Duration::from_millis(2),
            max_batch: 64,
            cache_capacity: 4096,
            max_connections: 256,
            read_timeout: Duration::from_secs(5),
            queue_bound: 1024,
            request_deadline: Duration::from_secs(2),
        }
    }
}

/// Everything a connection thread needs; dropping the last `Shared` closes
/// the admission queues, which lets the batchers drain and exit.
struct Shared {
    handle: Arc<ModelHandle>,
    metrics: Arc<Metrics>,
    recommend_tx: Sender<RecommendJob>,
    target_tx: Sender<TargetJob>,
    read_timeout: Duration,
    /// Jobs currently queued per route (incremented at admission,
    /// decremented by the batcher per dequeue); the shed threshold.
    recommend_depth: Arc<AtomicUsize>,
    target_depth: Arc<AtomicUsize>,
    queue_bound: usize,
    request_deadline: Duration,
}

/// A running server. Obtain with [`Server::start`], stop with
/// [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shutdown_flag: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    batcher_threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shared: Option<Arc<Shared>>,
    handle: Arc<ModelHandle>,
    metrics: Arc<Metrics>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and both batcher threads.
    pub fn start(
        addr: impl ToSocketAddrs,
        handle: Arc<ModelHandle>,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let shutdown_flag = Arc::new(AtomicBool::new(false));

        let batch_cfg = BatchConfig {
            window: config.batch_window,
            max_batch: config.max_batch.max(1),
            cache_capacity: config.cache_capacity,
        };
        let (recommend_tx, recommend_rx) = channel::<RecommendJob>();
        let (target_tx, target_rx) = channel::<TargetJob>();
        let recommend_depth = Arc::new(AtomicUsize::new(0));
        let target_depth = Arc::new(AtomicUsize::new(0));
        let mut batcher_threads = Vec::with_capacity(2);
        {
            let (h, m, d) = (handle.clone(), metrics.clone(), recommend_depth.clone());
            batcher_threads.push(
                std::thread::Builder::new()
                    .name("unimatch-batch-recommend".into())
                    .spawn(move || run_recommend_batcher(recommend_rx, h, m, batch_cfg, d))?,
            );
        }
        {
            let (h, m, d) = (handle.clone(), metrics.clone(), target_depth.clone());
            batcher_threads.push(
                std::thread::Builder::new()
                    .name("unimatch-batch-target".into())
                    .spawn(move || run_target_batcher(target_rx, h, m, batch_cfg, d))?,
            );
        }

        let shared = Arc::new(Shared {
            handle: handle.clone(),
            metrics: metrics.clone(),
            recommend_tx,
            target_tx,
            read_timeout: config.read_timeout,
            recommend_depth,
            target_depth,
            queue_bound: config.queue_bound,
            request_deadline: config.request_deadline,
        });

        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = shared.clone();
            let shutdown = shutdown_flag.clone();
            let conn_threads = conn_threads.clone();
            let max_connections = config.max_connections.max(1);
            std::thread::Builder::new().name("unimatch-accept".into()).spawn(move || {
                accept_loop(listener, shared, shutdown, conn_threads, max_connections)
            })?
        };

        Ok(Server {
            addr,
            shutdown_flag,
            accept_thread: Some(accept_thread),
            batcher_threads,
            conn_threads,
            shared: Some(shared),
            handle,
            metrics,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving metrics, shared with all server threads.
    pub fn metrics(&self) -> Arc<Metrics> {
        self.metrics.clone()
    }

    /// The hot-swappable model handle this server answers from.
    pub fn model(&self) -> Arc<ModelHandle> {
        self.handle.clone()
    }

    /// Graceful shutdown: stop accepting, finish every connection already
    /// accepted, drain the admission queues, then join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown_flag.swap(true, Ordering::SeqCst) {
            return;
        }
        // unblock the accept loop with a no-op connection
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // every accepted connection runs to completion (bounded by the
        // read timeout), enqueueing into the still-open queues
        let conns = std::mem::take(&mut *self.conn_threads.lock().expect("conn list poisoned"));
        for t in conns {
            let _ = t.join();
        }
        // dropping the last Shared closes the queues; the batchers answer
        // what is left and exit
        self.shared = None;
        for t in self.batcher_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    max_connections: usize,
) {
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        if active.load(Ordering::SeqCst) >= max_connections {
            shared.metrics.connection_rejected();
            let body = error_body("server at connection capacity");
            let _ = write_response_with(
                &mut stream,
                503,
                "application/json",
                RETRY_AFTER,
                &body,
            );
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let shared = shared.clone();
        let active_in_conn = active.clone();
        let spawned = std::thread::Builder::new().name("unimatch-conn".into()).spawn(move || {
            handle_connection(stream, &shared);
            active_in_conn.fetch_sub(1, Ordering::SeqCst);
        });
        match spawned {
            Ok(t) => {
                let mut conns = conn_threads.lock().expect("conn list poisoned");
                conns.retain(|t| !t.is_finished());
                conns.push(t);
            }
            Err(_) => {
                active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Serializes a `/recommend` result body. Public so integration tests can
/// assert the server's bytes are identical to a direct in-process call.
pub fn recommend_body(k: usize, hits: &[Hit]) -> Vec<u8> {
    Json::obj(vec![
        ("k", Json::int(k)),
        (
            "items",
            Json::Arr(
                hits.iter()
                    .map(|h| {
                        Json::obj(vec![
                            ("id", Json::int(h.id as usize)),
                            ("score", Json::F32(h.score)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_bytes()
}

/// Serializes a `/target` result body (see [`recommend_body`]).
pub fn target_body(k: usize, users: &[(u32, f32)]) -> Vec<u8> {
    Json::obj(vec![
        ("k", Json::int(k)),
        (
            "users",
            Json::Arr(
                users
                    .iter()
                    .map(|&(id, score)| {
                        Json::obj(vec![
                            ("id", Json::int(id as usize)),
                            ("score", Json::F32(score)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_bytes()
}

fn error_body(message: &str) -> Vec<u8> {
    Json::obj(vec![("error", Json::str(message))]).to_bytes()
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_nodelay(true);
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(HttpError::Malformed(msg)) => {
            shared.metrics.response(400);
            let _ = write_response(&mut stream, 400, "application/json", &error_body(msg));
            return;
        }
        Err(HttpError::TooLarge) => {
            shared.metrics.response(413);
            let _ =
                write_response(&mut stream, 413, "application/json", &error_body("body too large"));
            return;
        }
        Err(HttpError::Io(_)) => {
            // timeout or disconnect: nobody is listening for a reply
            return;
        }
    };
    let started = Instant::now();
    let (route, status, content_type, body) = dispatch(&request, shared);
    if let Some(route) = route {
        shared.metrics.request(route);
        shared.metrics.latency(route, started.elapsed().as_micros() as u64);
    }
    shared.metrics.response(status);
    // Overload answers tell the client when to come back; everything else
    // uses the plain writer.
    let extra = if status == 429 || status == 503 { RETRY_AFTER } else { &[] };
    let _ = write_response_with(&mut stream, status, content_type, extra, &body);
}

/// The `Retry-After` hint attached to every load-shedding response
/// (429 and 503): one second is long enough for a micro-batched backlog
/// to clear and short enough to keep well-behaved clients responsive.
const RETRY_AFTER: &[(&str, &str)] = &[("Retry-After", "1")];

type Dispatch = (Option<Route>, u16, &'static str, Vec<u8>);

fn dispatch(request: &Request, shared: &Shared) -> Dispatch {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/recommend") => route_recommend(request, shared),
        ("POST", "/target") => route_target(request, shared),
        ("POST", "/reload") => route_reload(request, shared),
        ("GET", "/healthz") => {
            let state = shared.handle.current();
            let body = Json::obj(vec![
                ("status", Json::str("ok")),
                ("version", Json::int(state.version as usize)),
                ("items", Json::int(state.fitted.num_items())),
                ("pool_users", Json::int(state.fitted.num_pool_users())),
                ("retriever", Json::str(state.fitted.retriever_backend())),
                ("shards", Json::int(state.fitted.retriever_shards())),
                ("rerank", Json::str(state.fitted.rerank_spec())),
                ("store", Json::str(state.fitted.store_format().name())),
                ("backing", Json::str(state.fitted.store_backing().name())),
            ])
            .to_bytes();
            (Some(Route::Healthz), 200, "application/json", body)
        }
        ("GET", "/metrics") => {
            // One scrape body: this server's owned series first, then every
            // process-global registry series (trainer, ANN, bench) so all
            // subsystems expose through the same endpoint, plus the armed
            // fault plane's fire count (0 while disarmed) so chaos runs can
            // correlate injected faults with the shed/error series above.
            let mut text = shared.metrics.render(shared.handle.version());
            text.push_str(&unimatch_obs::registry::render());
            text.push_str(&format!(
                "unimatch_faults_fired_total {}\n",
                unimatch_faults::fired_total()
            ));
            (Some(Route::Metrics), 200, "text/plain; version=0.0.4", text.into_bytes())
        }
        (_, "/recommend" | "/target" | "/reload" | "/healthz" | "/metrics") => {
            (None, 405, "application/json", error_body("method not allowed"))
        }
        _ => (None, 404, "application/json", error_body("no such route")),
    }
}

/// Parses `k` with a default of 10, bounded only by the batcher's
/// validation (k ≥ 1).
fn parse_k(body: &Json) -> Result<usize, String> {
    match body.get("k") {
        None => Ok(10),
        Some(v) => {
            v.as_u64().map(|k| k as usize).ok_or_else(|| "k must be an integer".to_string())
        }
    }
}

fn parse_body(request: &Request) -> Result<Json, String> {
    Json::parse(&request.body).map_err(|e| e.to_string())
}

fn route_recommend(request: &Request, shared: &Shared) -> Dispatch {
    let route = Some(Route::Recommend);
    let parsed = parse_body(request).and_then(|body| {
        let k = parse_k(&body)?;
        let history: Vec<u32> = body
            .get("history")
            .and_then(Json::as_array)
            .ok_or_else(|| "history must be an array of item ids".to_string())?
            .iter()
            .map(|v| {
                v.as_u64()
                    .filter(|&x| x <= u32::MAX as u64)
                    .map(|x| x as u32)
                    .ok_or_else(|| "history entries must be item ids".to_string())
            })
            .collect::<Result<_, _>>()?;
        Ok((history, k))
    });
    let (history, k) = match parsed {
        Ok(p) => p,
        Err(msg) => return (route, 400, "application/json", error_body(&msg)),
    };
    let Some(deadline) = admit(shared, &shared.recommend_depth) else {
        return (route, 429, "application/json", error_body("admission queue full"));
    };
    let (reply_tx, reply_rx) = channel();
    if shared.recommend_tx.send(RecommendJob { history, k, deadline, reply: reply_tx }).is_err() {
        shared.recommend_depth.fetch_sub(1, Ordering::SeqCst);
        return (route, 503, "application/json", error_body("server shutting down"));
    }
    match reply_rx.recv() {
        Ok(Ok(hits)) => (route, 200, "application/json", recommend_body(k, &hits)),
        Ok(Err(JobError::BadRequest(msg))) => (route, 400, "application/json", error_body(&msg)),
        Ok(Err(JobError::Internal(msg))) => (route, 500, "application/json", error_body(&msg)),
        Ok(Err(JobError::Expired)) => expired_dispatch(route),
        Err(_) => (route, 500, "application/json", error_body("batch executor unavailable")),
    }
}

/// Admission control: claims one queue slot and stamps the job's deadline,
/// or sheds (the caller answers `429`) when the queue is at its bound.
fn admit(shared: &Shared, depth: &AtomicUsize) -> Option<Instant> {
    if depth.fetch_add(1, Ordering::SeqCst) >= shared.queue_bound {
        depth.fetch_sub(1, Ordering::SeqCst);
        shared.metrics.shed_queue_full();
        return None;
    }
    Some(Instant::now() + shared.request_deadline)
}

/// The uniform answer for a job the batcher shed on deadline.
fn expired_dispatch(route: Option<Route>) -> Dispatch {
    (route, 503, "application/json", error_body("deadline exceeded in admission queue"))
}

fn route_target(request: &Request, shared: &Shared) -> Dispatch {
    let route = Some(Route::Target);
    let parsed = parse_body(request).and_then(|body| {
        let k = parse_k(&body)?;
        let item = body
            .get("item")
            .and_then(Json::as_u64)
            .filter(|&x| x <= u32::MAX as u64)
            .ok_or_else(|| "item must be an item id".to_string())?;
        Ok((item as u32, k))
    });
    let (item, k) = match parsed {
        Ok(p) => p,
        Err(msg) => return (route, 400, "application/json", error_body(&msg)),
    };
    let Some(deadline) = admit(shared, &shared.target_depth) else {
        return (route, 429, "application/json", error_body("admission queue full"));
    };
    let (reply_tx, reply_rx) = channel();
    if shared.target_tx.send(TargetJob { item, k, deadline, reply: reply_tx }).is_err() {
        shared.target_depth.fetch_sub(1, Ordering::SeqCst);
        return (route, 503, "application/json", error_body("server shutting down"));
    }
    match reply_rx.recv() {
        Ok(Ok(users)) => (route, 200, "application/json", target_body(k, &users)),
        Ok(Err(JobError::BadRequest(msg))) => (route, 400, "application/json", error_body(&msg)),
        Ok(Err(JobError::Internal(msg))) => (route, 500, "application/json", error_body(&msg)),
        Ok(Err(JobError::Expired)) => expired_dispatch(route),
        Err(_) => (route, 500, "application/json", error_body("batch executor unavailable")),
    }
}

fn route_reload(request: &Request, shared: &Shared) -> Dispatch {
    let route = Some(Route::Reload);
    let checkpoint: Option<String> = if request.body.is_empty() {
        None
    } else {
        match parse_body(request) {
            Ok(body) => match body.get("checkpoint") {
                None | Some(Json::Null) => None,
                Some(v) => match v.as_str() {
                    Some(s) => Some(s.to_string()),
                    None => {
                        return (
                            route,
                            400,
                            "application/json",
                            error_body("checkpoint must be a path string"),
                        )
                    }
                },
            },
            Err(msg) => return (route, 400, "application/json", error_body(&msg)),
        }
    };
    match shared.handle.reload(checkpoint.as_deref().map(Path::new)) {
        Ok(state) => {
            shared.metrics.reload();
            let body = Json::obj(vec![
                ("version", Json::int(state.version as usize)),
                ("checkpoint", Json::str(state.checkpoint.display().to_string())),
            ])
            .to_bytes();
            (route, 200, "application/json", body)
        }
        Err(e) => (route, 500, "application/json", error_body(&e.to_string())),
    }
}
