//! The TCP accept loop, request routing, and lifecycle management.
//!
//! ```text
//!        TCP accept (cap)        admission queues          batched execution
//! client ──► connection thread ──► RecommendJob/TargetJob ──► batcher thread ──► reply
//!                │                                               │
//!                └── /reload, /healthz, /metrics ── ModelHandle ─┘  (hot-swap snapshot)
//! ```
//!
//! Endpoints:
//!
//! | route | method | body | reply |
//! |---|---|---|---|
//! | `/recommend` | POST | `{"history":[ids],"k":N}` | `{"k":N,"items":[{"id","score"}]}` |
//! | `/target` | POST | `{"item":id,"k":N}` | `{"k":N,"users":[{"id","score"}]}` |
//! | `/reload` | POST | `{}` or `{"checkpoint":"path"}` | `{"version":N,"checkpoint":"path"}` |
//! | `/healthz` | GET | — | `{"status":"ok","version":N,…}` |
//! | `/metrics` | GET | — | text exposition |
//!
//! All ids are the dense internal universe (the CLI persists the external
//! ↔ dense vocabularies next to the checkpoint for translation).

use crate::batcher::{
    run_recommend_batcher, run_target_batcher, BatchConfig, JobError, RecommendJob, TargetJob,
};
use crate::brownout::{BrownoutControl, BrownoutSpec, BrownoutState};
use crate::http::{read_request, write_response, write_response_with, HttpError, Request};
use crate::metrics::{Metrics, Route};
use crate::shadow::{run_shadow_worker, ShadowSpec, ShadowState};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use unimatch_ann::Hit;
use unimatch_core::ModelHandle;
use unimatch_data::json::Json;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Micro-batching window: how long an admitted request may wait for
    /// co-travellers before its batch executes.
    pub batch_window: Duration,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Capacity of the user-history embedding LRU cache (0 disables).
    pub cache_capacity: usize,
    /// Maximum concurrently served connections; excess connections are
    /// answered `503` immediately instead of queueing without bound.
    pub max_connections: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Maximum jobs queued per route ahead of the batcher; requests
    /// arriving with the queue at this bound are shed with `429` and a
    /// `Retry-After` header instead of joining an unserviceable backlog.
    /// `0` sheds every query request — a drain mode, also useful in tests.
    pub queue_bound: usize,
    /// Per-request deadline through the admission queue: jobs the batcher
    /// dequeues after this much waiting are answered `503` (with
    /// `Retry-After`) instead of executed for a client that gave up.
    pub request_deadline: Duration,
    /// Brownout ladder (see [`crate::brownout`]): `None` disables the
    /// controller entirely — no thread, level pinned at 0, responses
    /// bitwise identical to a build without the brownout plane.
    pub brownout: Option<BrownoutSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_window: Duration::from_millis(2),
            max_batch: 64,
            cache_capacity: 4096,
            max_connections: 256,
            read_timeout: Duration::from_secs(5),
            queue_bound: 1024,
            request_deadline: Duration::from_secs(2),
            brownout: None,
        }
    }
}

/// The outcome of the most recent `POST /reload`, surfaced on `/healthz`.
struct ReloadOutcome {
    accepted: bool,
    /// The serving version after the attempt (unchanged on rejection).
    version: u64,
    /// Checkpoint path on success, the error on rejection.
    detail: String,
}

/// The armed shadow plane, as the endpoints see it: the sampler state
/// (pair/drop counts live in [`Metrics`]) plus the shadow deployment's
/// own hot-swappable handle.
struct ShadowShared {
    state: Arc<ShadowState>,
    handle: Arc<ModelHandle>,
}

/// Everything a connection thread needs; dropping the last `Shared` closes
/// the admission queues, which lets the batchers drain and exit.
struct Shared {
    handle: Arc<ModelHandle>,
    metrics: Arc<Metrics>,
    recommend_tx: Sender<RecommendJob>,
    target_tx: Sender<TargetJob>,
    read_timeout: Duration,
    /// Jobs currently queued per route (incremented at admission,
    /// decremented by the batcher per dequeue); the shed threshold.
    recommend_depth: Arc<AtomicUsize>,
    target_depth: Arc<AtomicUsize>,
    queue_bound: usize,
    request_deadline: Duration,
    /// The brownout plane, present when a ladder is configured.
    brownout: Option<Arc<BrownoutState>>,
    /// The shadow plane, present when a shadow deployment is armed.
    shadow: Option<ShadowShared>,
    /// When the server started accepting, for `/healthz` uptime.
    started: Instant,
    /// The most recent `/reload` outcome, for `/healthz`.
    last_reload: Mutex<Option<ReloadOutcome>>,
}

/// A running server. Obtain with [`Server::start`], stop with
/// [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shutdown_flag: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    brownout_thread: Option<JoinHandle<()>>,
    shadow_thread: Option<JoinHandle<()>>,
    batcher_threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shared: Option<Arc<Shared>>,
    handle: Arc<ModelHandle>,
    metrics: Arc<Metrics>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and both batcher threads.
    pub fn start(
        addr: impl ToSocketAddrs,
        handle: Arc<ModelHandle>,
        config: ServeConfig,
    ) -> io::Result<Server> {
        Server::start_with_shadow(addr, handle, config, None)
    }

    /// [`Server::start`] with an optional shadow deployment
    /// ([`crate::shadow`]): a deterministic sample of answered query
    /// traffic is mirrored to `shadow.handle`'s pipeline off the
    /// critical path, and the paired overlap/score/lag deltas surface as
    /// `unimatch_shadow_*` series on `/metrics` and a `"shadow"` block
    /// on `/healthz`. `None` (or a zero sample rate) arms nothing —
    /// serving is byte-identical to [`Server::start`].
    pub fn start_with_shadow(
        addr: impl ToSocketAddrs,
        handle: Arc<ModelHandle>,
        config: ServeConfig,
        shadow: Option<ShadowSpec>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let shutdown_flag = Arc::new(AtomicBool::new(false));

        let (shadow_shared, shadow_thread) = match shadow {
            Some(spec) if spec.sample_rate > 0.0 => {
                let (state, shadow_rx) =
                    ShadowState::new(spec.sample_rate, spec.queue_bound, metrics.clone());
                let (h, m) = (spec.handle.clone(), metrics.clone());
                let worker = std::thread::Builder::new()
                    .name("unimatch-shadow".into())
                    .spawn(move || run_shadow_worker(shadow_rx, h, m))?;
                (Some(ShadowShared { state, handle: spec.handle }), Some(worker))
            }
            _ => (None, None),
        };
        let shadow_state = shadow_shared.as_ref().map(|s| s.state.clone());

        let batch_cfg = BatchConfig {
            window: config.batch_window,
            max_batch: config.max_batch.max(1),
            cache_capacity: config.cache_capacity,
        };
        let (recommend_tx, recommend_rx) = channel::<RecommendJob>();
        let (target_tx, target_rx) = channel::<TargetJob>();
        let recommend_depth = Arc::new(AtomicUsize::new(0));
        let target_depth = Arc::new(AtomicUsize::new(0));
        let brownout = config.brownout.map(|spec| Arc::new(BrownoutState::new(spec)));
        let mut batcher_threads = Vec::with_capacity(2);
        {
            let (h, m, d) = (handle.clone(), metrics.clone(), recommend_depth.clone());
            let (b, s) = (brownout.clone(), shadow_state.clone());
            batcher_threads.push(
                std::thread::Builder::new()
                    .name("unimatch-batch-recommend".into())
                    .spawn(move || run_recommend_batcher(recommend_rx, h, m, batch_cfg, d, b, s))?,
            );
        }
        {
            let (h, m, d) = (handle.clone(), metrics.clone(), target_depth.clone());
            let (b, s) = (brownout.clone(), shadow_state);
            batcher_threads.push(
                std::thread::Builder::new()
                    .name("unimatch-batch-target".into())
                    .spawn(move || run_target_batcher(target_rx, h, m, batch_cfg, d, b, s))?,
            );
        }

        let brownout_thread = match &brownout {
            Some(state) => {
                let state = state.clone();
                let metrics = metrics.clone();
                let shutdown = shutdown_flag.clone();
                let (rec_depth, tgt_depth) = (recommend_depth.clone(), target_depth.clone());
                Some(
                    std::thread::Builder::new().name("unimatch-brownout".into()).spawn(
                        move || {
                            run_brownout_controller(
                                state, metrics, shutdown, rec_depth, tgt_depth,
                            )
                        },
                    )?,
                )
            }
            None => None,
        };

        let shared = Arc::new(Shared {
            handle: handle.clone(),
            metrics: metrics.clone(),
            recommend_tx,
            target_tx,
            read_timeout: config.read_timeout,
            recommend_depth,
            target_depth,
            queue_bound: config.queue_bound,
            request_deadline: config.request_deadline,
            brownout,
            shadow: shadow_shared,
            started: Instant::now(),
            last_reload: Mutex::new(None),
        });

        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = shared.clone();
            let shutdown = shutdown_flag.clone();
            let conn_threads = conn_threads.clone();
            let max_connections = config.max_connections.max(1);
            std::thread::Builder::new().name("unimatch-accept".into()).spawn(move || {
                accept_loop(listener, shared, shutdown, conn_threads, max_connections)
            })?
        };

        Ok(Server {
            addr,
            shutdown_flag,
            accept_thread: Some(accept_thread),
            brownout_thread,
            shadow_thread,
            batcher_threads,
            conn_threads,
            shared: Some(shared),
            handle,
            metrics,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving metrics, shared with all server threads.
    pub fn metrics(&self) -> Arc<Metrics> {
        self.metrics.clone()
    }

    /// The hot-swappable model handle this server answers from.
    pub fn model(&self) -> Arc<ModelHandle> {
        self.handle.clone()
    }

    /// Graceful shutdown: stop accepting, finish every connection already
    /// accepted, drain the admission queues, then join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown_flag.swap(true, Ordering::SeqCst) {
            return;
        }
        // unblock the accept loop with a no-op connection
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // the controller polls the shutdown flag between short sleeps
        if let Some(t) = self.brownout_thread.take() {
            let _ = t.join();
        }
        // every accepted connection runs to completion (bounded by the
        // read timeout), enqueueing into the still-open queues
        let conns = std::mem::take(&mut *self.conn_threads.lock().expect("conn list poisoned"));
        for t in conns {
            let _ = t.join();
        }
        // dropping the last Shared closes the queues; the batchers answer
        // what is left and exit
        self.shared = None;
        for t in self.batcher_threads.drain(..) {
            let _ = t.join();
        }
        // with the batchers and Shared gone, every mirror sender is
        // dropped; the shadow worker drains what is queued and exits
        if let Some(t) = self.shadow_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    max_connections: usize,
) {
    let active = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        if active.load(Ordering::SeqCst) >= max_connections {
            shared.metrics.connection_rejected();
            let body = error_body("server at connection capacity");
            let retry = retry_after_secs(&shared).to_string();
            let _ = write_response_with(
                &mut stream,
                503,
                "application/json",
                &[("Retry-After", retry.as_str())],
                &body,
            );
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let shared = shared.clone();
        let active_in_conn = active.clone();
        let spawned = std::thread::Builder::new().name("unimatch-conn".into()).spawn(move || {
            handle_connection(stream, &shared);
            active_in_conn.fetch_sub(1, Ordering::SeqCst);
        });
        match spawned {
            Ok(t) => {
                let mut conns = conn_threads.lock().expect("conn list poisoned");
                conns.retain(|t| !t.is_finished());
                conns.push(t);
            }
            Err(_) => {
                active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// The brownout control loop: samples queue pressure every
/// [`BrownoutSpec::interval`], feeds it through the hysteresis state
/// machine, and publishes the resulting ladder level for the batchers and
/// admission to read. Sleeps in short slices so shutdown never waits a
/// full interval.
fn run_brownout_controller(
    state: Arc<BrownoutState>,
    metrics: Arc<Metrics>,
    shutdown: Arc<AtomicBool>,
    recommend_depth: Arc<AtomicUsize>,
    target_depth: Arc<AtomicUsize>,
) {
    let spec = state.spec().clone();
    let mut control = BrownoutControl::new(&spec);
    let mut last_misses = metrics.shed_deadlines();
    while !shutdown.load(Ordering::SeqCst) {
        let mut remaining = spec.interval;
        while !remaining.is_zero() && !shutdown.load(Ordering::SeqCst) {
            let slice = remaining.min(Duration::from_millis(20));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let depth =
            recommend_depth.load(Ordering::SeqCst) + target_depth.load(Ordering::SeqCst);
        let misses = metrics.shed_deadlines();
        let level = control.observe(depth, misses - last_misses);
        last_misses = misses;
        state.set_level(level);
    }
}

/// Serializes a `/recommend` result body. Public so integration tests can
/// assert the server's bytes are identical to a direct in-process call.
pub fn recommend_body(k: usize, hits: &[Hit]) -> Vec<u8> {
    query_body(k, false, "items", hits.iter().map(|h| (h.id, h.score)))
}

/// [`recommend_body`] with the `"degraded":true` marker — emitted only
/// when a quorum-tolerated shard failure or an active brownout rung
/// touched this answer. Healthy responses never carry the key, keeping
/// them bitwise identical to the pre-brownout wire format.
pub fn recommend_body_degraded(k: usize, hits: &[Hit]) -> Vec<u8> {
    query_body(k, true, "items", hits.iter().map(|h| (h.id, h.score)))
}

/// Serializes a `/target` result body (see [`recommend_body`]).
pub fn target_body(k: usize, users: &[(u32, f32)]) -> Vec<u8> {
    query_body(k, false, "users", users.iter().copied())
}

/// [`target_body`] with the `"degraded":true` marker (see
/// [`recommend_body_degraded`]).
pub fn target_body_degraded(k: usize, users: &[(u32, f32)]) -> Vec<u8> {
    query_body(k, true, "users", users.iter().copied())
}

fn query_body(
    k: usize,
    degraded: bool,
    list_key: &str,
    entries: impl Iterator<Item = (u32, f32)>,
) -> Vec<u8> {
    let mut fields = vec![("k", Json::int(k))];
    if degraded {
        fields.push(("degraded", Json::Bool(true)));
    }
    fields.push((
        list_key,
        Json::Arr(
            entries
                .map(|(id, score)| {
                    Json::obj(vec![("id", Json::int(id as usize)), ("score", Json::F32(score))])
                })
                .collect(),
        ),
    ));
    Json::obj(fields).to_bytes()
}

fn error_body(message: &str) -> Vec<u8> {
    Json::obj(vec![("error", Json::str(message))]).to_bytes()
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_nodelay(true);
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(HttpError::Malformed(msg)) => {
            shared.metrics.response(400);
            let _ = write_response(&mut stream, 400, "application/json", &error_body(msg));
            return;
        }
        Err(HttpError::TooLarge) => {
            shared.metrics.response(413);
            let _ =
                write_response(&mut stream, 413, "application/json", &error_body("body too large"));
            return;
        }
        Err(HttpError::Io(_)) => {
            // timeout or disconnect: nobody is listening for a reply
            return;
        }
    };
    let started = Instant::now();
    let (route, status, content_type, body) = dispatch(&request, shared);
    if let Some(route) = route {
        shared.metrics.request(route);
        shared.metrics.latency(route, started.elapsed().as_micros() as u64);
    }
    shared.metrics.response(status);
    // Overload answers tell the client when to come back; everything else
    // uses the plain writer.
    let retry: String;
    let retry_header: [(&str, &str); 1];
    let extra: &[(&str, &str)] = if status == 429 || status == 503 {
        retry = retry_after_secs(shared).to_string();
        retry_header = [("Retry-After", retry.as_str())];
        &retry_header
    } else {
        &[]
    };
    let _ = write_response_with(&mut stream, status, content_type, extra, &body);
}

/// The `Retry-After` hint attached to every load-shedding response (429
/// and 503): the estimated time to drain the current backlog — queue
/// depth × the recent per-job service time (EWMA) — clamped to [1, 30] s.
/// An idle or lightly loaded server answers the floor of 1 s; the cap
/// keeps a transient spike from parking well-behaved clients for minutes.
fn retry_after_secs(shared: &Shared) -> u64 {
    let depth = shared.recommend_depth.load(Ordering::SeqCst)
        + shared.target_depth.load(Ordering::SeqCst);
    drain_estimate_secs(depth, shared.metrics.recent_service_us())
}

/// The pure arithmetic behind [`retry_after_secs`], separated for tests.
fn drain_estimate_secs(depth: usize, per_job_us: u64) -> u64 {
    (depth as u64).saturating_mul(per_job_us).div_ceil(1_000_000).clamp(1, 30)
}

type Dispatch = (Option<Route>, u16, &'static str, Vec<u8>);

fn dispatch(request: &Request, shared: &Shared) -> Dispatch {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/recommend") => route_recommend(request, shared),
        ("POST", "/target") => route_target(request, shared),
        ("POST", "/reload") => route_reload(request, shared),
        ("GET", "/healthz") => {
            let state = shared.handle.current();
            let last_reload = match &*shared.last_reload.lock().expect("reload state poisoned") {
                None => Json::str("none"),
                Some(o) => Json::obj(vec![
                    ("outcome", Json::str(if o.accepted { "accepted" } else { "rejected" })),
                    ("version", Json::int(o.version as usize)),
                    ("detail", Json::str(o.detail.clone())),
                ]),
            };
            let mut fields = vec![
                ("status", Json::str("ok")),
                ("version", Json::int(state.version as usize)),
                ("uptime_s", Json::int(shared.started.elapsed().as_secs() as usize)),
                ("items", Json::int(state.fitted.num_items())),
                ("pool_users", Json::int(state.fitted.num_pool_users())),
                ("retriever", Json::str(state.fitted.retriever_backend())),
                ("shards", Json::int(state.fitted.retriever_shards())),
                ("rerank", Json::str(state.fitted.rerank_spec())),
                ("store", Json::str(state.fitted.store_format().name())),
                ("backing", Json::str(state.fitted.store_backing().name())),
                ("brownout", Json::int(shared.brownout.as_ref().map_or(0, |b| b.level()))),
            ];
            // only an armed shadow adds the key — a shadow-less server's
            // body stays byte-identical to builds without the plane
            if let Some(sh) = &shared.shadow {
                let shadow_state = sh.handle.current();
                fields.push((
                    "shadow",
                    Json::obj(vec![
                        ("sample_rate", Json::F32(sh.state.sample_rate() as f32)),
                        ("version", Json::int(shadow_state.version as usize)),
                        ("checkpoint", Json::str(shadow_state.checkpoint.display().to_string())),
                        ("retriever", Json::str(shadow_state.fitted.retriever_backend())),
                        ("shards", Json::int(shadow_state.fitted.retriever_shards())),
                        ("rerank", Json::str(shadow_state.fitted.rerank_spec())),
                        ("store", Json::str(shadow_state.fitted.store_format().name())),
                        ("pairs", Json::int(shared.metrics.shadow_pairs() as usize)),
                        ("dropped", Json::int(shared.metrics.shadow_dropped_total() as usize)),
                        (
                            "overlap",
                            Json::F32(shared.metrics.shadow_overlap_ratio() as f32),
                        ),
                    ]),
                ));
            }
            fields.push(("last_reload", last_reload));
            let body = Json::obj(fields).to_bytes();
            (Some(Route::Healthz), 200, "application/json", body)
        }
        ("GET", "/metrics") => {
            // One scrape body: this server's owned series first, then every
            // process-global registry series (trainer, ANN, bench) so all
            // subsystems expose through the same endpoint, plus the armed
            // fault plane's fire count (0 while disarmed) so chaos runs can
            // correlate injected faults with the shed/error series above.
            let mut text = shared.metrics.render(shared.handle.version());
            text.push_str(&unimatch_obs::registry::render());
            text.push_str(&format!(
                "unimatch_faults_fired_total {}\n",
                unimatch_faults::fired_total()
            ));
            text.push_str(&format!(
                "unimatch_brownout_level {}\n",
                shared.brownout.as_ref().map_or(0, |b| b.level())
            ));
            if let Some(sh) = &shared.shadow {
                text.push_str(&shared.metrics.render_shadow(sh.state.sample_rate()));
                text.push_str(&format!(
                    "unimatch_shadow_model_version {}\n",
                    sh.handle.version()
                ));
            }
            (Some(Route::Metrics), 200, "text/plain; version=0.0.4", text.into_bytes())
        }
        (_, "/recommend" | "/target" | "/reload" | "/healthz" | "/metrics") => {
            (None, 405, "application/json", error_body("method not allowed"))
        }
        _ => (None, 404, "application/json", error_body("no such route")),
    }
}

/// Parses `k` with a default of 10, bounded only by the batcher's
/// validation (k ≥ 1).
fn parse_k(body: &Json) -> Result<usize, String> {
    match body.get("k") {
        None => Ok(10),
        Some(v) => {
            v.as_u64().map(|k| k as usize).ok_or_else(|| "k must be an integer".to_string())
        }
    }
}

fn parse_body(request: &Request) -> Result<Json, String> {
    Json::parse(&request.body).map_err(|e| e.to_string())
}

fn route_recommend(request: &Request, shared: &Shared) -> Dispatch {
    let route = Some(Route::Recommend);
    let parsed = parse_body(request).and_then(|body| {
        let k = parse_k(&body)?;
        let history: Vec<u32> = body
            .get("history")
            .and_then(Json::as_array)
            .ok_or_else(|| "history must be an array of item ids".to_string())?
            .iter()
            .map(|v| {
                v.as_u64()
                    .filter(|&x| x <= u32::MAX as u64)
                    .map(|x| x as u32)
                    .ok_or_else(|| "history entries must be item ids".to_string())
            })
            .collect::<Result<_, _>>()?;
        Ok((history, k))
    });
    let (history, k) = match parsed {
        Ok(p) => p,
        Err(msg) => return (route, 400, "application/json", error_body(&msg)),
    };
    if let Some(shed) = brownout_shed(shared, route) {
        return shed;
    }
    let Some(deadline) = admit(shared, &shared.recommend_depth) else {
        return (route, 429, "application/json", error_body("admission queue full"));
    };
    let (reply_tx, reply_rx) = channel();
    if shared.recommend_tx.send(RecommendJob { history, k, deadline, reply: reply_tx }).is_err() {
        shared.recommend_depth.fetch_sub(1, Ordering::SeqCst);
        return (route, 503, "application/json", error_body("server shutting down"));
    }
    match reply_rx.recv() {
        Ok(Ok((hits, degraded))) => {
            let body =
                if degraded { recommend_body_degraded(k, &hits) } else { recommend_body(k, &hits) };
            (route, 200, "application/json", body)
        }
        Ok(Err(JobError::BadRequest(msg))) => (route, 400, "application/json", error_body(&msg)),
        Ok(Err(JobError::Internal(msg))) => (route, 500, "application/json", error_body(&msg)),
        Ok(Err(JobError::Expired)) => expired_dispatch(route),
        Err(_) => (route, 500, "application/json", error_body("batch executor unavailable")),
    }
}

/// Sheds the request with `503` + `Retry-After` when the brownout ladder
/// has escalated to its `shed` rung; `None` admits.
fn brownout_shed(shared: &Shared, route: Option<Route>) -> Option<Dispatch> {
    if shared.brownout.as_ref().is_some_and(|b| b.shedding()) {
        shared.metrics.shed_brownout();
        return Some((route, 503, "application/json", error_body("brownout: shedding load")));
    }
    None
}

/// Admission control: claims one queue slot and stamps the job's deadline,
/// or sheds (the caller answers `429`) when the queue is at its bound.
fn admit(shared: &Shared, depth: &AtomicUsize) -> Option<Instant> {
    if depth.fetch_add(1, Ordering::SeqCst) >= shared.queue_bound {
        depth.fetch_sub(1, Ordering::SeqCst);
        shared.metrics.shed_queue_full();
        return None;
    }
    Some(Instant::now() + shared.request_deadline)
}

/// The uniform answer for a job the batcher shed on deadline.
fn expired_dispatch(route: Option<Route>) -> Dispatch {
    (route, 503, "application/json", error_body("deadline exceeded in admission queue"))
}

fn route_target(request: &Request, shared: &Shared) -> Dispatch {
    let route = Some(Route::Target);
    let parsed = parse_body(request).and_then(|body| {
        let k = parse_k(&body)?;
        let item = body
            .get("item")
            .and_then(Json::as_u64)
            .filter(|&x| x <= u32::MAX as u64)
            .ok_or_else(|| "item must be an item id".to_string())?;
        Ok((item as u32, k))
    });
    let (item, k) = match parsed {
        Ok(p) => p,
        Err(msg) => return (route, 400, "application/json", error_body(&msg)),
    };
    if let Some(shed) = brownout_shed(shared, route) {
        return shed;
    }
    let Some(deadline) = admit(shared, &shared.target_depth) else {
        return (route, 429, "application/json", error_body("admission queue full"));
    };
    let (reply_tx, reply_rx) = channel();
    if shared.target_tx.send(TargetJob { item, k, deadline, reply: reply_tx }).is_err() {
        shared.target_depth.fetch_sub(1, Ordering::SeqCst);
        return (route, 503, "application/json", error_body("server shutting down"));
    }
    match reply_rx.recv() {
        Ok(Ok((users, degraded))) => {
            let body =
                if degraded { target_body_degraded(k, &users) } else { target_body(k, &users) };
            (route, 200, "application/json", body)
        }
        Ok(Err(JobError::BadRequest(msg))) => (route, 400, "application/json", error_body(&msg)),
        Ok(Err(JobError::Internal(msg))) => (route, 500, "application/json", error_body(&msg)),
        Ok(Err(JobError::Expired)) => expired_dispatch(route),
        Err(_) => (route, 500, "application/json", error_body("batch executor unavailable")),
    }
}

fn route_reload(request: &Request, shared: &Shared) -> Dispatch {
    let route = Some(Route::Reload);
    let checkpoint: Option<String> = if request.body.is_empty() {
        None
    } else {
        match parse_body(request) {
            Ok(body) => match body.get("checkpoint") {
                None | Some(Json::Null) => None,
                Some(v) => match v.as_str() {
                    Some(s) => Some(s.to_string()),
                    None => {
                        return (
                            route,
                            400,
                            "application/json",
                            error_body("checkpoint must be a path string"),
                        )
                    }
                },
            },
            Err(msg) => return (route, 400, "application/json", error_body(&msg)),
        }
    };
    match shared.handle.reload(checkpoint.as_deref().map(Path::new)) {
        Ok(state) => {
            shared.metrics.reload();
            *shared.last_reload.lock().expect("reload state poisoned") = Some(ReloadOutcome {
                accepted: true,
                version: state.version,
                detail: state.checkpoint.display().to_string(),
            });
            let body = Json::obj(vec![
                ("version", Json::int(state.version as usize)),
                ("checkpoint", Json::str(state.checkpoint.display().to_string())),
            ])
            .to_bytes();
            (route, 200, "application/json", body)
        }
        Err(e) => {
            *shared.last_reload.lock().expect("reload state poisoned") = Some(ReloadOutcome {
                accepted: false,
                version: shared.handle.version(),
                detail: e.to_string(),
            });
            (route, 500, "application/json", error_body(&e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::drain_estimate_secs;

    #[test]
    fn retry_after_scales_with_backlog_within_clamps() {
        // idle or unmeasured servers answer the floor — the historical "1"
        assert_eq!(drain_estimate_secs(0, 0), 1);
        assert_eq!(drain_estimate_secs(100, 0), 1);
        assert_eq!(drain_estimate_secs(0, 5_000), 1);
        // sub-second backlogs round up to the floor, not down to zero
        assert_eq!(drain_estimate_secs(10, 5_000), 1);
        // 1000 queued jobs × 5 ms each ≈ 5 s of drain
        assert_eq!(drain_estimate_secs(1000, 5_000), 5);
        // partial seconds round up (2.5 s → 3)
        assert_eq!(drain_estimate_secs(500, 5_000), 3);
        // a pathological backlog is capped so clients are not parked
        assert_eq!(drain_estimate_secs(1_000_000, 50_000), 30);
        assert_eq!(drain_estimate_secs(usize::MAX, u64::MAX), 30);
    }
}
