//! Serving metrics: lock-free counters and histograms with a text
//! exposition endpoint (`GET /metrics`, Prometheus-style line format).
//!
//! The primitives live in [`unimatch_obs`] — this module owns one
//! instance of each series per [`Metrics`] struct (one per server), and
//! the server appends [`unimatch_obs::registry::render`] to the scrape
//! body so training and ANN series registered elsewhere in the process
//! appear on the same endpoint.
//!
//! Every counter is a relaxed atomic — the hot path pays one `fetch_add`
//! per observation and the exposition renders a consistent-enough snapshot
//! without stopping traffic.

use std::sync::atomic::{AtomicU64, Ordering};
use unimatch_obs::{Counter, Histogram, LATENCY_BOUNDS_US};

/// Interned `shard="…"` label bodies for the per-shard error counters
/// (indices past the table share the overflow bucket).
const SHARD_ERROR_LABELS: [&str; 17] = [
    "shard=\"0\"",
    "shard=\"1\"",
    "shard=\"2\"",
    "shard=\"3\"",
    "shard=\"4\"",
    "shard=\"5\"",
    "shard=\"6\"",
    "shard=\"7\"",
    "shard=\"8\"",
    "shard=\"9\"",
    "shard=\"10\"",
    "shard=\"11\"",
    "shard=\"12\"",
    "shard=\"13\"",
    "shard=\"14\"",
    "shard=\"15\"",
    "shard=\"16+\"",
];

/// The served routes, used as metric labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// `POST /recommend` — IR, user history → top-k items.
    Recommend,
    /// `POST /target` — UT, item → top-k users.
    Target,
    /// `POST /reload` — checkpoint hot-swap.
    Reload,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
}

impl Route {
    /// All routes, in exposition order.
    pub const ALL: [Route; 5] =
        [Route::Recommend, Route::Target, Route::Reload, Route::Healthz, Route::Metrics];

    /// The metric label for this route.
    pub fn label(self) -> &'static str {
        match self {
            Route::Recommend => "recommend",
            Route::Target => "target",
            Route::Reload => "reload",
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
        }
    }

    fn index(self) -> usize {
        match self {
            Route::Recommend => 0,
            Route::Target => 1,
            Route::Reload => 2,
            Route::Healthz => 3,
            Route::Metrics => 4,
        }
    }
}

/// Micro-batch size bucket bounds (requests coalesced per execution).
const BATCH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// All serving metrics, shared across connection and batcher threads.
///
/// These are *owned* (per-server) series, always on regardless of the
/// global [`unimatch_obs::enabled`] flag — a serving process wants its
/// request counters unconditionally, and per-instance ownership keeps
/// two servers in one test process from sharing counts.
pub struct Metrics {
    requests: [Counter; 5],
    responses_4xx: Counter,
    responses_5xx: Counter,
    /// End-to-end request latency (parse → response ready), µs; one
    /// histogram per query route.
    latency_recommend_us: Histogram,
    /// See [`Metrics::latency_recommend_us`].
    latency_target_us: Histogram,
    batch_recommend: Histogram,
    batch_target: Histogram,
    cache_hits: Counter,
    cache_misses: Counter,
    reloads: Counter,
    connections_rejected: Counter,
    /// Requests turned away at admission because the queue was at its
    /// configured bound (→ 429).
    shed_queue_full: Counter,
    /// Admitted jobs dropped by the batcher because their deadline passed
    /// while they queued (→ 503).
    shed_deadline: Counter,
    /// Requests turned away at admission because the brownout ladder
    /// reached its `shed` step (→ 503).
    shed_brownout: Counter,
    /// Per-shard retrieval failures absorbed by the quorum policy; index
    /// 16 is the `16+` overflow bucket.
    shard_errors: [Counter; 17],
    /// 200 responses flagged `degraded:true` because a shard was missing
    /// from the merge.
    degraded_shard: Counter,
    /// 200 responses flagged `degraded:true` because an active brownout
    /// step changed response content.
    degraded_brownout: Counter,
    /// EWMA of per-job batcher service time, µs — feeds the dynamic
    /// `Retry-After` estimate. Zero until the first batch executes.
    service_ewma_us: AtomicU64,
    /// Paired primary/shadow comparisons completed, per query route.
    shadow_pairs_recommend: Counter,
    /// See [`Metrics::shadow_pairs_recommend`].
    shadow_pairs_target: Counter,
    /// Sampled mirrors lost: mirror queue full, shadow vocabulary too
    /// small for the request, or shadow execution panicked.
    shadow_dropped: Counter,
    /// Sum of per-pair overlap@k in milli-units (identical lists add
    /// 1000); divide by `pairs × 1000` for the mean overlap ratio.
    shadow_overlap_milli: Counter,
    /// Sum of per-pair mean |score delta| over the overlap, micro-units.
    shadow_score_delta_micro: Counter,
    /// Queue wait of mirrored jobs (primary answer → shadow dequeue), µs.
    shadow_lag_us: Histogram,
    /// Shadow pipeline execution time per mirrored job, µs.
    shadow_exec_us: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: Default::default(),
            responses_4xx: Counter::new(),
            responses_5xx: Counter::new(),
            latency_recommend_us: Histogram::new(LATENCY_BOUNDS_US),
            latency_target_us: Histogram::new(LATENCY_BOUNDS_US),
            batch_recommend: Histogram::new(BATCH_BOUNDS),
            batch_target: Histogram::new(BATCH_BOUNDS),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            reloads: Counter::new(),
            connections_rejected: Counter::new(),
            shed_queue_full: Counter::new(),
            shed_deadline: Counter::new(),
            shed_brownout: Counter::new(),
            shard_errors: Default::default(),
            degraded_shard: Counter::new(),
            degraded_brownout: Counter::new(),
            service_ewma_us: AtomicU64::new(0),
            shadow_pairs_recommend: Counter::new(),
            shadow_pairs_target: Counter::new(),
            shadow_dropped: Counter::new(),
            shadow_overlap_milli: Counter::new(),
            shadow_score_delta_micro: Counter::new(),
            shadow_lag_us: Histogram::new(LATENCY_BOUNDS_US),
            shadow_exec_us: Histogram::new(LATENCY_BOUNDS_US),
        }
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Counts one request routed to `route`.
    pub fn request(&self, route: Route) {
        self.requests[route.index()].inc();
    }

    /// Requests seen so far on `route`.
    pub fn requests(&self, route: Route) -> u64 {
        self.requests[route.index()].get()
    }

    /// Counts one response with `status`.
    pub fn response(&self, status: u16) {
        match status {
            400..=499 => self.responses_4xx.inc(),
            500..=599 => self.responses_5xx.inc(),
            _ => {}
        }
    }

    /// Records an end-to-end latency observation for a query route.
    pub fn latency(&self, route: Route, micros: u64) {
        match route {
            Route::Recommend => self.latency_recommend_us.observe(micros),
            Route::Target => self.latency_target_us.observe(micros),
            _ => {}
        }
    }

    /// Records the size of one executed micro-batch.
    pub fn batch(&self, route: Route, size: usize) {
        match route {
            Route::Recommend => self.batch_recommend.observe(size as u64),
            Route::Target => self.batch_target.observe(size as u64),
            _ => {}
        }
    }

    /// Batches executed so far for a query route.
    pub fn batches(&self, route: Route) -> u64 {
        match route {
            Route::Recommend => self.batch_recommend.count(),
            Route::Target => self.batch_target.count(),
            _ => 0,
        }
    }

    /// Counts an embedding-cache hit.
    pub fn cache_hit(&self) {
        self.cache_hits.inc();
    }

    /// Counts an embedding-cache miss.
    pub fn cache_miss(&self) {
        self.cache_misses.inc();
    }

    /// Counts a successful checkpoint reload.
    pub fn reload(&self) {
        self.reloads.inc();
    }

    /// Counts a connection turned away at the connection cap.
    pub fn connection_rejected(&self) {
        self.connections_rejected.inc();
    }

    /// Counts a request shed at admission because the queue was full.
    pub fn shed_queue_full(&self) {
        self.shed_queue_full.inc();
    }

    /// Counts a queued job shed because its deadline passed.
    pub fn shed_deadline(&self) {
        self.shed_deadline.inc();
    }

    /// Counts a request shed at admission by the brownout `shed` step.
    pub fn shed_brownout(&self) {
        self.shed_brownout.inc();
    }

    /// Requests shed so far, across all reasons.
    pub fn sheds(&self) -> u64 {
        self.shed_queue_full.get() + self.shed_deadline.get() + self.shed_brownout.get()
    }

    /// Deadline sheds so far — sampled by the brownout controller as its
    /// deadline-miss pressure signal.
    pub fn shed_deadlines(&self) -> u64 {
        self.shed_deadline.get()
    }

    /// Counts one shard failure absorbed by the quorum policy.
    pub fn shard_error(&self, shard: usize) {
        self.shard_errors[shard.min(SHARD_ERROR_LABELS.len() - 1)].inc();
    }

    /// Shard failures absorbed so far, summed across shards.
    pub fn shard_errors(&self) -> u64 {
        self.shard_errors.iter().map(Counter::get).sum()
    }

    /// Counts one degraded 200 response; `shard` distinguishes a missing
    /// shard from a content-affecting brownout step.
    pub fn degraded_response(&self, shard: bool) {
        if shard {
            self.degraded_shard.inc();
        } else {
            self.degraded_brownout.inc();
        }
    }

    /// Degraded responses served so far, across both reasons.
    pub fn degraded_responses(&self) -> u64 {
        self.degraded_shard.get() + self.degraded_brownout.get()
    }

    /// Folds one per-job service-time observation (µs) into the EWMA
    /// (α = 1/4) behind the dynamic `Retry-After` estimate.
    pub fn observe_service(&self, per_job_us: u64) {
        let prev = self.service_ewma_us.load(Ordering::Relaxed);
        let next = if prev == 0 { per_job_us } else { (3 * prev + per_job_us) / 4 };
        self.service_ewma_us.store(next, Ordering::Relaxed);
    }

    /// Recent per-job service time, µs (0 before any batch has run).
    pub fn recent_service_us(&self) -> u64 {
        self.service_ewma_us.load(Ordering::Relaxed)
    }

    /// Records one completed primary/shadow comparison: overlap@k in
    /// milli-units and the mean |score delta| over the overlap in
    /// micro-units (see [`crate::shadow::paired_deltas`]). Non-query
    /// routes are ignored.
    pub fn shadow_pair(&self, route: Route, overlap_milli: u64, score_delta_micro: u64) {
        match route {
            Route::Recommend => self.shadow_pairs_recommend.inc(),
            Route::Target => self.shadow_pairs_target.inc(),
            _ => return,
        }
        self.shadow_overlap_milli.add(overlap_milli);
        self.shadow_score_delta_micro.add(score_delta_micro);
    }

    /// Counts one sampled mirror that was lost (queue full, shadow
    /// vocabulary too small, or shadow execution panicked).
    pub fn shadow_dropped(&self) {
        self.shadow_dropped.inc();
    }

    /// Records a mirrored job's queue wait (primary answer → shadow
    /// dequeue), µs.
    pub fn shadow_lag(&self, micros: u64) {
        self.shadow_lag_us.observe(micros);
    }

    /// Records one shadow pipeline execution, µs.
    pub fn shadow_exec(&self, micros: u64) {
        self.shadow_exec_us.observe(micros);
    }

    /// Paired comparisons completed so far, across both routes.
    pub fn shadow_pairs(&self) -> u64 {
        self.shadow_pairs_recommend.get() + self.shadow_pairs_target.get()
    }

    /// Sampled mirrors lost so far.
    pub fn shadow_dropped_total(&self) -> u64 {
        self.shadow_dropped.get()
    }

    /// Mean overlap@k over all completed pairs (0.0 before the first;
    /// 1.0 means every shadow answer matched its primary exactly).
    pub fn shadow_overlap_ratio(&self) -> f64 {
        let pairs = self.shadow_pairs();
        if pairs == 0 {
            0.0
        } else {
            self.shadow_overlap_milli.get() as f64 / (pairs as f64 * 1000.0)
        }
    }

    /// Mean |score delta| over all completed pairs' overlaps.
    pub fn shadow_score_delta_mean(&self) -> f64 {
        let pairs = self.shadow_pairs();
        if pairs == 0 {
            0.0
        } else {
            self.shadow_score_delta_micro.get() as f64 / (pairs as f64 * 1e6)
        }
    }

    /// Renders the `unimatch_shadow_*` families. Separate from
    /// [`Metrics::render`] so a shadow-less server's scrape stays
    /// byte-identical to builds without the shadow plane — the server
    /// appends this only when a shadow is armed.
    pub fn render_shadow(&self, sample_rate: f64) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        writeln!(out, "unimatch_shadow_sample_rate {sample_rate}").expect("write to String");
        self.shadow_pairs_recommend.render(
            "unimatch_shadow_pairs_total",
            "route=\"recommend\"",
            &mut out,
        );
        self.shadow_pairs_target.render("unimatch_shadow_pairs_total", "route=\"target\"", &mut out);
        self.shadow_dropped.render("unimatch_shadow_dropped_total", "", &mut out);
        self.shadow_overlap_milli.render("unimatch_shadow_overlap_sum_milli", "", &mut out);
        writeln!(out, "unimatch_shadow_overlap_ratio {}", self.shadow_overlap_ratio())
            .expect("write to String");
        self.shadow_score_delta_micro.render(
            "unimatch_shadow_score_delta_sum_micro",
            "",
            &mut out,
        );
        writeln!(out, "unimatch_shadow_score_delta_mean {}", self.shadow_score_delta_mean())
            .expect("write to String");
        self.shadow_lag_us.render("unimatch_shadow_lag_us", "", &mut out);
        self.shadow_exec_us.render("unimatch_shadow_exec_us", "", &mut out);
        out
    }

    /// Renders the text exposition. `model_version` is sampled by the
    /// caller from the serving handle at scrape time.
    pub fn render(&self, model_version: u64) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);
        for route in Route::ALL {
            writeln!(
                out,
                "unimatch_requests_total{{route=\"{}\"}} {}",
                route.label(),
                self.requests(route)
            )
            .expect("write to String");
        }
        self.responses_4xx.render("unimatch_responses_total", "class=\"4xx\"", &mut out);
        self.responses_5xx.render("unimatch_responses_total", "class=\"5xx\"", &mut out);
        self.latency_recommend_us.render(
            "unimatch_request_latency_us",
            "route=\"recommend\"",
            &mut out,
        );
        self.latency_target_us.render("unimatch_request_latency_us", "route=\"target\"", &mut out);
        self.batch_recommend.render("unimatch_batch_size", "route=\"recommend\"", &mut out);
        self.batch_target.render("unimatch_batch_size", "route=\"target\"", &mut out);
        let hits = self.cache_hits.get();
        let misses = self.cache_misses.get();
        writeln!(out, "unimatch_embedding_cache_hits_total {hits}").expect("write to String");
        writeln!(out, "unimatch_embedding_cache_misses_total {misses}").expect("write to String");
        let ratio = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
        writeln!(out, "unimatch_embedding_cache_hit_ratio {ratio}").expect("write to String");
        self.reloads.render("unimatch_reloads_total", "", &mut out);
        self.connections_rejected.render("unimatch_connections_rejected_total", "", &mut out);
        self.shed_queue_full.render("unimatch_requests_shed_total", "reason=\"queue_full\"", &mut out);
        self.shed_deadline.render("unimatch_requests_shed_total", "reason=\"deadline\"", &mut out);
        self.shed_brownout.render("unimatch_requests_shed_total", "reason=\"brownout\"", &mut out);
        for (counter, labels) in self.shard_errors.iter().zip(SHARD_ERROR_LABELS) {
            counter.render("unimatch_shard_errors_total", labels, &mut out);
        }
        self.degraded_shard.render("unimatch_degraded_responses_total", "reason=\"shard\"", &mut out);
        self.degraded_brownout.render(
            "unimatch_degraded_responses_total",
            "reason=\"brownout\"",
            &mut out,
        );
        writeln!(out, "unimatch_model_version {model_version}").expect("write to String");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_contains_all_families() {
        let m = Metrics::new();
        m.request(Route::Recommend);
        m.request(Route::Metrics);
        m.response(404);
        m.response(500);
        m.latency(Route::Recommend, 123);
        m.batch(Route::Recommend, 7);
        m.cache_hit();
        m.cache_miss();
        m.reload();
        m.connection_rejected();
        m.shed_queue_full();
        m.shed_deadline();
        m.shed_brownout();
        m.shard_error(1);
        m.shard_error(99);
        m.degraded_response(true);
        m.degraded_response(false);
        let text = m.render(3);
        for needle in [
            "unimatch_requests_total{route=\"recommend\"} 1",
            "unimatch_requests_total{route=\"metrics\"} 1",
            "unimatch_responses_total{class=\"4xx\"} 1",
            "unimatch_responses_total{class=\"5xx\"} 1",
            "unimatch_request_latency_us_bucket{route=\"recommend\",le=\"250\"} 1",
            "unimatch_batch_size_bucket{route=\"recommend\",le=\"8\"} 1",
            "unimatch_embedding_cache_hits_total 1",
            "unimatch_embedding_cache_hit_ratio 0.5",
            "unimatch_reloads_total 1",
            "unimatch_connections_rejected_total 1",
            "unimatch_requests_shed_total{reason=\"queue_full\"} 1",
            "unimatch_requests_shed_total{reason=\"deadline\"} 1",
            "unimatch_requests_shed_total{reason=\"brownout\"} 1",
            "unimatch_shard_errors_total{shard=\"0\"} 0",
            "unimatch_shard_errors_total{shard=\"1\"} 1",
            "unimatch_shard_errors_total{shard=\"16+\"} 1",
            "unimatch_degraded_responses_total{reason=\"shard\"} 1",
            "unimatch_degraded_responses_total{reason=\"brownout\"} 1",
            "unimatch_model_version 3",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert_eq!(m.sheds(), 3);
        assert_eq!(m.shard_errors(), 2);
        assert_eq!(m.degraded_responses(), 2);
    }

    #[test]
    fn shadow_families_render_only_through_the_dedicated_section() {
        let m = Metrics::new();
        assert!(
            !m.render(1).contains("unimatch_shadow"),
            "the base exposition must stay shadow-free (shadow-off byte identity)"
        );
        m.shadow_pair(Route::Recommend, 1000, 0);
        m.shadow_pair(Route::Target, 500, 250_000);
        m.shadow_pair(Route::Healthz, 999, 999); // non-query routes ignored
        m.shadow_dropped();
        m.shadow_lag(120);
        m.shadow_exec(450);
        let text = m.render_shadow(0.25);
        for needle in [
            "unimatch_shadow_sample_rate 0.25",
            "unimatch_shadow_pairs_total{route=\"recommend\"} 1",
            "unimatch_shadow_pairs_total{route=\"target\"} 1",
            "unimatch_shadow_dropped_total 1",
            "unimatch_shadow_overlap_sum_milli 1500",
            "unimatch_shadow_overlap_ratio 0.75",
            "unimatch_shadow_score_delta_sum_micro 250000",
            "unimatch_shadow_score_delta_mean 0.125",
            "unimatch_shadow_lag_us_count 1",
            "unimatch_shadow_exec_us_count 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert_eq!(m.shadow_pairs(), 2);
        assert_eq!(m.shadow_dropped_total(), 1);
    }

    #[test]
    fn service_ewma_tracks_recent_observations() {
        let m = Metrics::new();
        assert_eq!(m.recent_service_us(), 0);
        m.observe_service(1000);
        assert_eq!(m.recent_service_us(), 1000);
        m.observe_service(2000);
        // (3*1000 + 2000) / 4 = 1250 — moves toward the new sample
        assert_eq!(m.recent_service_us(), 1250);
        for _ in 0..32 {
            m.observe_service(5000);
        }
        assert!(m.recent_service_us() > 4900, "EWMA should converge to the plateau");
    }
}
