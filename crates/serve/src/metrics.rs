//! Serving metrics: lock-free counters and histograms with a text
//! exposition endpoint (`GET /metrics`, Prometheus-style line format).
//!
//! Every counter is a relaxed atomic — the hot path pays one `fetch_add`
//! per observation and the exposition renders a consistent-enough snapshot
//! without stopping traffic.

use std::sync::atomic::{AtomicU64, Ordering};

/// The served routes, used as metric labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// `POST /recommend` — IR, user history → top-k items.
    Recommend,
    /// `POST /target` — UT, item → top-k users.
    Target,
    /// `POST /reload` — checkpoint hot-swap.
    Reload,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
}

impl Route {
    /// All routes, in exposition order.
    pub const ALL: [Route; 5] =
        [Route::Recommend, Route::Target, Route::Reload, Route::Healthz, Route::Metrics];

    /// The metric label for this route.
    pub fn label(self) -> &'static str {
        match self {
            Route::Recommend => "recommend",
            Route::Target => "target",
            Route::Reload => "reload",
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
        }
    }

    fn index(self) -> usize {
        match self {
            Route::Recommend => 0,
            Route::Target => 1,
            Route::Reload => 2,
            Route::Healthz => 3,
            Route::Metrics => 4,
        }
    }
}

/// A fixed-bucket histogram with cumulative (`le`) exposition.
pub struct Histogram {
    bounds: &'static [u64],
    /// One count per bound plus a final overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    pub fn new(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let bucket = self.bounds.partition_point(|&b| b < value);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn render(&self, name: &str, labels: &str, out: &mut String) {
        use std::fmt::Write;
        let mut cumulative = 0u64;
        for (i, bound) in self.bounds.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            let sep = if labels.is_empty() { "" } else { "," };
            writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}")
                .expect("write to String");
        }
        cumulative += self.counts[self.bounds.len()].load(Ordering::Relaxed);
        let sep = if labels.is_empty() { "" } else { "," };
        writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}")
            .expect("write to String");
        let braces = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
        writeln!(out, "{name}_sum{braces} {}", self.sum()).expect("write to String");
        writeln!(out, "{name}_count{braces} {}", self.count()).expect("write to String");
    }
}

/// Request latency bucket bounds, microseconds.
const LATENCY_BOUNDS_US: [u64; 11] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000];

/// Micro-batch size bucket bounds (requests coalesced per execution).
const BATCH_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// All serving metrics, shared across connection and batcher threads.
pub struct Metrics {
    requests: [AtomicU64; 5],
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    /// End-to-end request latency (parse → response ready), µs; one
    /// histogram per query route.
    latency_recommend_us: Histogram,
    /// See [`Metrics::latency_recommend_us`].
    latency_target_us: Histogram,
    batch_recommend: Histogram,
    batch_target: Histogram,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    reloads: AtomicU64,
    connections_rejected: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: Default::default(),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            latency_recommend_us: Histogram::new(&LATENCY_BOUNDS_US),
            latency_target_us: Histogram::new(&LATENCY_BOUNDS_US),
            batch_recommend: Histogram::new(&BATCH_BOUNDS),
            batch_target: Histogram::new(&BATCH_BOUNDS),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Counts one request routed to `route`.
    pub fn request(&self, route: Route) {
        self.requests[route.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Requests seen so far on `route`.
    pub fn requests(&self, route: Route) -> u64 {
        self.requests[route.index()].load(Ordering::Relaxed)
    }

    /// Counts one response with `status`.
    pub fn response(&self, status: u16) {
        match status {
            400..=499 => {
                self.responses_4xx.fetch_add(1, Ordering::Relaxed);
            }
            500..=599 => {
                self.responses_5xx.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Records an end-to-end latency observation for a query route.
    pub fn latency(&self, route: Route, micros: u64) {
        match route {
            Route::Recommend => self.latency_recommend_us.observe(micros),
            Route::Target => self.latency_target_us.observe(micros),
            _ => {}
        }
    }

    /// Records the size of one executed micro-batch.
    pub fn batch(&self, route: Route, size: usize) {
        match route {
            Route::Recommend => self.batch_recommend.observe(size as u64),
            Route::Target => self.batch_target.observe(size as u64),
            _ => {}
        }
    }

    /// Batches executed so far for a query route.
    pub fn batches(&self, route: Route) -> u64 {
        match route {
            Route::Recommend => self.batch_recommend.count(),
            Route::Target => self.batch_target.count(),
            _ => 0,
        }
    }

    /// Counts an embedding-cache hit.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an embedding-cache miss.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a successful checkpoint reload.
    pub fn reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a connection turned away at the connection cap.
    pub fn connection_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the text exposition. `model_version` is sampled by the
    /// caller from the serving handle at scrape time.
    pub fn render(&self, model_version: u64) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);
        for route in Route::ALL {
            writeln!(
                out,
                "unimatch_requests_total{{route=\"{}\"}} {}",
                route.label(),
                self.requests(route)
            )
            .expect("write to String");
        }
        writeln!(
            out,
            "unimatch_responses_total{{class=\"4xx\"}} {}",
            self.responses_4xx.load(Ordering::Relaxed)
        )
        .expect("write to String");
        writeln!(
            out,
            "unimatch_responses_total{{class=\"5xx\"}} {}",
            self.responses_5xx.load(Ordering::Relaxed)
        )
        .expect("write to String");
        self.latency_recommend_us.render(
            "unimatch_request_latency_us",
            "route=\"recommend\"",
            &mut out,
        );
        self.latency_target_us.render("unimatch_request_latency_us", "route=\"target\"", &mut out);
        self.batch_recommend.render("unimatch_batch_size", "route=\"recommend\"", &mut out);
        self.batch_target.render("unimatch_batch_size", "route=\"target\"", &mut out);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        writeln!(out, "unimatch_embedding_cache_hits_total {hits}").expect("write to String");
        writeln!(out, "unimatch_embedding_cache_misses_total {misses}").expect("write to String");
        let ratio = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
        writeln!(out, "unimatch_embedding_cache_hit_ratio {ratio}").expect("write to String");
        writeln!(out, "unimatch_reloads_total {}", self.reloads.load(Ordering::Relaxed))
            .expect("write to String");
        writeln!(
            out,
            "unimatch_connections_rejected_total {}",
            self.connections_rejected.load(Ordering::Relaxed)
        )
        .expect("write to String");
        writeln!(out, "unimatch_model_version {model_version}").expect("write to String");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(10); // le="10" is inclusive
        h.observe(50);
        h.observe(1000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1065);
        let mut out = String::new();
        h.render("x", "", &mut out);
        assert!(out.contains("x_bucket{le=\"10\"} 2"), "{out}");
        assert!(out.contains("x_bucket{le=\"100\"} 3"), "{out}");
        assert!(out.contains("x_bucket{le=\"+Inf\"} 4"), "{out}");
        assert!(out.contains("x_count 4"), "{out}");
    }

    #[test]
    fn exposition_contains_all_families() {
        let m = Metrics::new();
        m.request(Route::Recommend);
        m.request(Route::Metrics);
        m.response(404);
        m.response(500);
        m.latency(Route::Recommend, 123);
        m.batch(Route::Recommend, 7);
        m.cache_hit();
        m.cache_miss();
        m.reload();
        m.connection_rejected();
        let text = m.render(3);
        for needle in [
            "unimatch_requests_total{route=\"recommend\"} 1",
            "unimatch_requests_total{route=\"metrics\"} 1",
            "unimatch_responses_total{class=\"4xx\"} 1",
            "unimatch_responses_total{class=\"5xx\"} 1",
            "unimatch_request_latency_us_bucket{route=\"recommend\",le=\"250\"} 1",
            "unimatch_batch_size_bucket{route=\"recommend\",le=\"8\"} 1",
            "unimatch_embedding_cache_hits_total 1",
            "unimatch_embedding_cache_hit_ratio 0.5",
            "unimatch_reloads_total 1",
            "unimatch_connections_rejected_total 1",
            "unimatch_model_version 3",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
