//! Serving metrics: lock-free counters and histograms with a text
//! exposition endpoint (`GET /metrics`, Prometheus-style line format).
//!
//! The primitives live in [`unimatch_obs`] — this module owns one
//! instance of each series per [`Metrics`] struct (one per server), and
//! the server appends [`unimatch_obs::registry::render`] to the scrape
//! body so training and ANN series registered elsewhere in the process
//! appear on the same endpoint.
//!
//! Every counter is a relaxed atomic — the hot path pays one `fetch_add`
//! per observation and the exposition renders a consistent-enough snapshot
//! without stopping traffic.

use unimatch_obs::{Counter, Histogram, LATENCY_BOUNDS_US};

/// The served routes, used as metric labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// `POST /recommend` — IR, user history → top-k items.
    Recommend,
    /// `POST /target` — UT, item → top-k users.
    Target,
    /// `POST /reload` — checkpoint hot-swap.
    Reload,
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics`.
    Metrics,
}

impl Route {
    /// All routes, in exposition order.
    pub const ALL: [Route; 5] =
        [Route::Recommend, Route::Target, Route::Reload, Route::Healthz, Route::Metrics];

    /// The metric label for this route.
    pub fn label(self) -> &'static str {
        match self {
            Route::Recommend => "recommend",
            Route::Target => "target",
            Route::Reload => "reload",
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
        }
    }

    fn index(self) -> usize {
        match self {
            Route::Recommend => 0,
            Route::Target => 1,
            Route::Reload => 2,
            Route::Healthz => 3,
            Route::Metrics => 4,
        }
    }
}

/// Micro-batch size bucket bounds (requests coalesced per execution).
const BATCH_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// All serving metrics, shared across connection and batcher threads.
///
/// These are *owned* (per-server) series, always on regardless of the
/// global [`unimatch_obs::enabled`] flag — a serving process wants its
/// request counters unconditionally, and per-instance ownership keeps
/// two servers in one test process from sharing counts.
pub struct Metrics {
    requests: [Counter; 5],
    responses_4xx: Counter,
    responses_5xx: Counter,
    /// End-to-end request latency (parse → response ready), µs; one
    /// histogram per query route.
    latency_recommend_us: Histogram,
    /// See [`Metrics::latency_recommend_us`].
    latency_target_us: Histogram,
    batch_recommend: Histogram,
    batch_target: Histogram,
    cache_hits: Counter,
    cache_misses: Counter,
    reloads: Counter,
    connections_rejected: Counter,
    /// Requests turned away at admission because the queue was at its
    /// configured bound (→ 429).
    shed_queue_full: Counter,
    /// Admitted jobs dropped by the batcher because their deadline passed
    /// while they queued (→ 503).
    shed_deadline: Counter,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: Default::default(),
            responses_4xx: Counter::new(),
            responses_5xx: Counter::new(),
            latency_recommend_us: Histogram::new(LATENCY_BOUNDS_US),
            latency_target_us: Histogram::new(LATENCY_BOUNDS_US),
            batch_recommend: Histogram::new(BATCH_BOUNDS),
            batch_target: Histogram::new(BATCH_BOUNDS),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            reloads: Counter::new(),
            connections_rejected: Counter::new(),
            shed_queue_full: Counter::new(),
            shed_deadline: Counter::new(),
        }
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Counts one request routed to `route`.
    pub fn request(&self, route: Route) {
        self.requests[route.index()].inc();
    }

    /// Requests seen so far on `route`.
    pub fn requests(&self, route: Route) -> u64 {
        self.requests[route.index()].get()
    }

    /// Counts one response with `status`.
    pub fn response(&self, status: u16) {
        match status {
            400..=499 => self.responses_4xx.inc(),
            500..=599 => self.responses_5xx.inc(),
            _ => {}
        }
    }

    /// Records an end-to-end latency observation for a query route.
    pub fn latency(&self, route: Route, micros: u64) {
        match route {
            Route::Recommend => self.latency_recommend_us.observe(micros),
            Route::Target => self.latency_target_us.observe(micros),
            _ => {}
        }
    }

    /// Records the size of one executed micro-batch.
    pub fn batch(&self, route: Route, size: usize) {
        match route {
            Route::Recommend => self.batch_recommend.observe(size as u64),
            Route::Target => self.batch_target.observe(size as u64),
            _ => {}
        }
    }

    /// Batches executed so far for a query route.
    pub fn batches(&self, route: Route) -> u64 {
        match route {
            Route::Recommend => self.batch_recommend.count(),
            Route::Target => self.batch_target.count(),
            _ => 0,
        }
    }

    /// Counts an embedding-cache hit.
    pub fn cache_hit(&self) {
        self.cache_hits.inc();
    }

    /// Counts an embedding-cache miss.
    pub fn cache_miss(&self) {
        self.cache_misses.inc();
    }

    /// Counts a successful checkpoint reload.
    pub fn reload(&self) {
        self.reloads.inc();
    }

    /// Counts a connection turned away at the connection cap.
    pub fn connection_rejected(&self) {
        self.connections_rejected.inc();
    }

    /// Counts a request shed at admission because the queue was full.
    pub fn shed_queue_full(&self) {
        self.shed_queue_full.inc();
    }

    /// Counts a queued job shed because its deadline passed.
    pub fn shed_deadline(&self) {
        self.shed_deadline.inc();
    }

    /// Requests shed so far, across both reasons.
    pub fn sheds(&self) -> u64 {
        self.shed_queue_full.get() + self.shed_deadline.get()
    }

    /// Renders the text exposition. `model_version` is sampled by the
    /// caller from the serving handle at scrape time.
    pub fn render(&self, model_version: u64) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(4096);
        for route in Route::ALL {
            writeln!(
                out,
                "unimatch_requests_total{{route=\"{}\"}} {}",
                route.label(),
                self.requests(route)
            )
            .expect("write to String");
        }
        self.responses_4xx.render("unimatch_responses_total", "class=\"4xx\"", &mut out);
        self.responses_5xx.render("unimatch_responses_total", "class=\"5xx\"", &mut out);
        self.latency_recommend_us.render(
            "unimatch_request_latency_us",
            "route=\"recommend\"",
            &mut out,
        );
        self.latency_target_us.render("unimatch_request_latency_us", "route=\"target\"", &mut out);
        self.batch_recommend.render("unimatch_batch_size", "route=\"recommend\"", &mut out);
        self.batch_target.render("unimatch_batch_size", "route=\"target\"", &mut out);
        let hits = self.cache_hits.get();
        let misses = self.cache_misses.get();
        writeln!(out, "unimatch_embedding_cache_hits_total {hits}").expect("write to String");
        writeln!(out, "unimatch_embedding_cache_misses_total {misses}").expect("write to String");
        let ratio = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
        writeln!(out, "unimatch_embedding_cache_hit_ratio {ratio}").expect("write to String");
        self.reloads.render("unimatch_reloads_total", "", &mut out);
        self.connections_rejected.render("unimatch_connections_rejected_total", "", &mut out);
        self.shed_queue_full.render("unimatch_requests_shed_total", "reason=\"queue_full\"", &mut out);
        self.shed_deadline.render("unimatch_requests_shed_total", "reason=\"deadline\"", &mut out);
        writeln!(out, "unimatch_model_version {model_version}").expect("write to String");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_contains_all_families() {
        let m = Metrics::new();
        m.request(Route::Recommend);
        m.request(Route::Metrics);
        m.response(404);
        m.response(500);
        m.latency(Route::Recommend, 123);
        m.batch(Route::Recommend, 7);
        m.cache_hit();
        m.cache_miss();
        m.reload();
        m.connection_rejected();
        m.shed_queue_full();
        m.shed_deadline();
        let text = m.render(3);
        for needle in [
            "unimatch_requests_total{route=\"recommend\"} 1",
            "unimatch_requests_total{route=\"metrics\"} 1",
            "unimatch_responses_total{class=\"4xx\"} 1",
            "unimatch_responses_total{class=\"5xx\"} 1",
            "unimatch_request_latency_us_bucket{route=\"recommend\",le=\"250\"} 1",
            "unimatch_batch_size_bucket{route=\"recommend\",le=\"8\"} 1",
            "unimatch_embedding_cache_hits_total 1",
            "unimatch_embedding_cache_hit_ratio 0.5",
            "unimatch_reloads_total 1",
            "unimatch_connections_rejected_total 1",
            "unimatch_requests_shed_total{reason=\"queue_full\"} 1",
            "unimatch_requests_shed_total{reason=\"deadline\"} 1",
            "unimatch_model_version 3",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
