//! Shadow deployments: mirror a deterministic sample of live traffic to
//! a second [`MatchPipeline`](unimatch_core::MatchPipeline) off the
//! critical path.
//!
//! ```text
//!                 primary batcher ──► reply to client   (critical path)
//!                        │
//!            sampled? ── ┴─► bounded queue ──► shadow worker thread
//!                                                  │
//!                                   second ModelHandle (own checkpoint,
//!                                   retriever, store format, rerank)
//!                                                  │
//!                              paired overlap@k / score-delta / lag
//!                              → unimatch_shadow_* series on /metrics
//! ```
//!
//! Design constraints, in order:
//!
//! 1. **The primary path must not notice.** Sampling is one counter
//!    increment plus a multiply; submission is a `try_send` on a bounded
//!    channel that *drops* (and counts) rather than blocks when the
//!    shadow falls behind. The shadow never touches a primary reply.
//! 2. **Sampling is deterministic.** The decision for the N-th answered
//!    request is a pure function of N (a splitmix64 stream thresholded
//!    at the sample rate), so a replayed traffic tape selects the same
//!    requests — paired metrics are reproducible run to run.
//! 3. **Comparisons are paired.** Each mirrored job carries the primary
//!    answer it is compared against, so overlap@k and score deltas are
//!    computed request by request, not from aggregate distributions. An
//!    A/A shadow (same checkpoint, same configuration) reports
//!    overlap 1.0 and score delta 0 exactly.

use crate::metrics::{Metrics, Route};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::Instant;
use unimatch_ann::Hit;
use unimatch_core::ModelHandle;

/// What the server needs to arm a shadow deployment (see
/// [`crate::Server::start_with_shadow`]).
pub struct ShadowSpec {
    /// The shadow deployment: its own checkpoint, retriever, store
    /// format, and rerank chain behind a hot-swappable handle.
    pub handle: Arc<ModelHandle>,
    /// Fraction of answered query requests mirrored to the shadow, in
    /// `[0, 1]`. `0` disables the plane entirely (no thread, no queue —
    /// serving is byte-identical to a shadow-less build).
    pub sample_rate: f64,
    /// Bound of the mirror queue; sampled jobs arriving with the queue
    /// full are dropped (and counted) instead of backpressuring the
    /// primary batcher.
    pub queue_bound: usize,
}

impl ShadowSpec {
    /// A spec with the default queue bound (256).
    pub fn new(handle: Arc<ModelHandle>, sample_rate: f64) -> ShadowSpec {
        ShadowSpec { handle, sample_rate, queue_bound: 256 }
    }
}

/// One mirrored request: the input plus the primary answer it will be
/// compared against.
pub enum ShadowJob {
    /// A mirrored `/recommend` answer.
    Recommend {
        /// The request history.
        history: Vec<u32>,
        /// The requested k.
        k: usize,
        /// The primary's hit list, as sent to the client.
        primary: Vec<Hit>,
        /// When the primary batcher enqueued the mirror (lag anchor).
        enqueued: Instant,
    },
    /// A mirrored `/target` answer.
    Target {
        /// The request item.
        item: u32,
        /// The requested k.
        k: usize,
        /// The primary's `(user_id, score)` list, as sent to the client.
        primary: Vec<(u32, f32)>,
        /// When the primary batcher enqueued the mirror (lag anchor).
        enqueued: Instant,
    },
}

/// The sampling seed of the deterministic mirror stream. Fixed: the
/// decision sequence depends only on request ordinals, never on wall
/// clock or deployment.
const SAMPLE_SEED: u64 = 0x5ead_0f7e_a11c;

/// The batcher-facing half of the shadow plane: the sampler and the
/// bounded submission queue. Shared by both route batchers.
pub struct ShadowState {
    sample_rate: f64,
    /// `sample()` fires when the splitmix64 draw falls below this.
    threshold: u64,
    /// Ordinal of the next answered request considered for sampling.
    counter: AtomicU64,
    tx: SyncSender<ShadowJob>,
    metrics: Arc<Metrics>,
}

impl ShadowState {
    /// Builds the state plus the receiver its worker thread drains.
    pub fn new(
        sample_rate: f64,
        queue_bound: usize,
        metrics: Arc<Metrics>,
    ) -> (Arc<ShadowState>, Receiver<ShadowJob>) {
        let rate = sample_rate.clamp(0.0, 1.0);
        let threshold = if rate >= 1.0 { u64::MAX } else { (rate * u64::MAX as f64) as u64 };
        let (tx, rx) = sync_channel(queue_bound.max(1));
        (
            Arc::new(ShadowState {
                sample_rate: rate,
                threshold,
                counter: AtomicU64::new(0),
                tx,
                metrics,
            }),
            rx,
        )
    }

    /// The configured mirror fraction.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Deterministically decides whether the next answered request is
    /// mirrored: the N-th call hashes N through splitmix64 and compares
    /// against the rate threshold. At rate 1.0 every call fires.
    pub fn sample(&self) -> bool {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        if self.threshold == u64::MAX {
            return true;
        }
        splitmix64(n ^ SAMPLE_SEED) < self.threshold
    }

    /// Mirrors one answered `/recommend` (clones the inputs; never
    /// blocks — a full queue drops and counts).
    pub fn submit_recommend(&self, history: &[u32], k: usize, primary: &[Hit]) {
        self.submit(ShadowJob::Recommend {
            history: history.to_vec(),
            k,
            primary: primary.to_vec(),
            enqueued: Instant::now(),
        });
    }

    /// Mirrors one answered `/target` (see
    /// [`ShadowState::submit_recommend`]).
    pub fn submit_target(&self, item: u32, k: usize, primary: &[(u32, f32)]) {
        self.submit(ShadowJob::Target {
            item,
            k,
            primary: primary.to_vec(),
            enqueued: Instant::now(),
        });
    }

    fn submit(&self, job: ShadowJob) {
        if self.tx.try_send(job).is_err() {
            self.metrics.shadow_dropped();
        }
    }
}

/// The standard splitmix64 mixer — a bijective avalanche over `u64`, so
/// thresholding its output samples uniformly over request ordinals.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The shadow worker loop: drains mirrored jobs, answers each through
/// the shadow deployment's pipeline, and records the paired deltas.
/// Exits when every submission handle is dropped (server shutdown).
pub fn run_shadow_worker(rx: Receiver<ShadowJob>, handle: Arc<ModelHandle>, metrics: Arc<Metrics>) {
    while let Ok(job) = rx.recv() {
        let state = handle.current();
        let num_items = state.fitted.num_items() as u32;
        match job {
            ShadowJob::Recommend { history, k, primary, enqueued } => {
                metrics.shadow_lag(enqueued.elapsed().as_micros() as u64);
                // a shadow checkpoint with a smaller vocabulary cannot
                // answer this request; count it as dropped
                if history.is_empty() || history.iter().any(|&i| i >= num_items) {
                    metrics.shadow_dropped();
                    continue;
                }
                let started = Instant::now();
                let shadow = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    state.fitted.recommend_items(&history, k)
                }));
                metrics.shadow_exec(started.elapsed().as_micros() as u64);
                match shadow {
                    Ok(hits) => {
                        let (overlap, delta) = paired_deltas(
                            k,
                            primary.iter().map(|h| (h.id, h.score)),
                            hits.iter().map(|h| (h.id, h.score)),
                        );
                        metrics.shadow_pair(Route::Recommend, overlap, delta);
                    }
                    Err(_) => metrics.shadow_dropped(),
                }
            }
            ShadowJob::Target { item, k, primary, enqueued } => {
                metrics.shadow_lag(enqueued.elapsed().as_micros() as u64);
                if item >= num_items {
                    metrics.shadow_dropped();
                    continue;
                }
                let started = Instant::now();
                let shadow = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    state.fitted.target_users(item, k)
                }));
                metrics.shadow_exec(started.elapsed().as_micros() as u64);
                match shadow {
                    Ok(users) => {
                        let (overlap, delta) =
                            paired_deltas(k, primary.iter().copied(), users.iter().copied());
                        metrics.shadow_pair(Route::Target, overlap, delta);
                    }
                    Err(_) => metrics.shadow_dropped(),
                }
            }
        }
    }
}

/// The paired comparison behind one `unimatch_shadow_pairs_total`
/// observation: overlap@k in milli-units (`|ids(primary) ∩ ids(shadow)|
/// / k`, so identical lists of length k score 1000) and the mean
/// absolute score delta over the intersection in micro-units. Pure and
/// order-insensitive — only membership and per-id scores matter.
pub fn paired_deltas(
    k: usize,
    primary: impl Iterator<Item = (u32, f32)>,
    shadow: impl Iterator<Item = (u32, f32)>,
) -> (u64, u64) {
    let primary: Vec<(u32, f32)> = primary.collect();
    let mut matched = 0u64;
    let mut delta_sum = 0.0f64;
    for (id, score) in shadow {
        if let Some(&(_, p)) = primary.iter().find(|&&(pid, _)| pid == id) {
            matched += 1;
            delta_sum += (f64::from(p) - f64::from(score)).abs();
        }
    }
    let overlap_milli = if k == 0 { 0 } else { matched * 1000 / k as u64 };
    let delta_micro = if matched == 0 {
        0
    } else {
        ((delta_sum / matched as f64) * 1e6).round().min(u64::MAX as f64) as u64
    };
    (overlap_milli, delta_micro)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_tracks_the_rate() {
        let metrics = Arc::new(Metrics::new());
        let (a, _rx_a) = ShadowState::new(0.25, 8, metrics.clone());
        let (b, _rx_b) = ShadowState::new(0.25, 8, metrics.clone());
        let run_a: Vec<bool> = (0..4000).map(|_| a.sample()).collect();
        let run_b: Vec<bool> = (0..4000).map(|_| b.sample()).collect();
        assert_eq!(run_a, run_b, "two states at the same rate must sample identically");
        let hits = run_a.iter().filter(|&&s| s).count();
        assert!(
            (800..1200).contains(&hits),
            "rate 0.25 over 4000 draws should select ~1000, got {hits}"
        );

        let (all, _rx) = ShadowState::new(1.0, 8, metrics.clone());
        assert!((0..100).all(|_| all.sample()), "rate 1.0 must mirror everything");
        let (none, _rx) = ShadowState::new(0.0, 8, metrics);
        assert!((0..100).all(|_| !none.sample()), "rate 0.0 must mirror nothing");
    }

    #[test]
    fn paired_deltas_score_identity_and_divergence() {
        let a = [(1u32, 0.9f32), (2, 0.8), (3, 0.7)];
        // A/A: overlap 1.0, delta 0 — order must not matter
        let shuffled = [(3u32, 0.7f32), (1, 0.9), (2, 0.8)];
        assert_eq!(paired_deltas(3, a.iter().copied(), shuffled.iter().copied()), (1000, 0));
        // disjoint: overlap 0, no matched scores
        let b = [(7u32, 0.9f32), (8, 0.8), (9, 0.7)];
        assert_eq!(paired_deltas(3, a.iter().copied(), b.iter().copied()), (0, 0));
        // partial: 2 of 3 shared, mean |Δ| = (0.1 + 0.3) / 2 = 0.2
        let c = [(1u32, 0.8f32), (2, 0.5), (9, 0.7)];
        let (overlap, delta) = paired_deltas(3, a.iter().copied(), c.iter().copied());
        assert_eq!(overlap, 666);
        assert!((199_000..201_000).contains(&delta), "mean delta ≈ 0.2 in micro-units: {delta}");
        // shadow shorter than k counts against overlap
        let short = [(1u32, 0.9f32)];
        assert_eq!(paired_deltas(3, a.iter().copied(), short.iter().copied()).0, 333);
    }

    #[test]
    fn full_queue_drops_instead_of_blocking() {
        let metrics = Arc::new(Metrics::new());
        let (state, rx) = ShadowState::new(1.0, 2, metrics.clone());
        for _ in 0..5 {
            state.submit_target(1, 3, &[(1, 0.5)]);
        }
        assert_eq!(metrics.shadow_dropped_total(), 3, "bound 2 holds 2 of 5 submissions");
        drop(rx);
        state.submit_target(1, 3, &[(1, 0.5)]);
        assert_eq!(metrics.shadow_dropped_total(), 4, "closed queue also drops");
    }
}
