//! # unimatch-serve
//!
//! The online serving subsystem of the UniMatch reproduction: a
//! std-only (zero external dependency) HTTP server that answers both
//! marketing tasks from one hot-swappable model, completing the
//! production story of Sec. III-B3 — month-by-month incremental
//! retraining feeding a fleet that serves item recommendation *and* user
//! targeting from the same embeddings.
//!
//! Architecture (details in `docs/ARCHITECTURE.md`):
//!
//! * **micro-batching** ([`batcher`]) — concurrent requests arriving
//!   within a small window are coalesced into one call to the batched
//!   serving APIs, so the `unimatch-parallel` fan-out amortizes across
//!   callers; results are identical to unbatched calls;
//! * **model hot-swap** (`unimatch_core::serving::ModelHandle`) —
//!   `POST /reload` builds the next serving snapshot off-lock and swaps a
//!   pointer; in-flight batches finish on the version that admitted them;
//! * **embedding cache** ([`cache`]) — an exact LRU over user histories
//!   that removes the user-tower forward pass for hot users;
//! * **observability** ([`metrics`]) — request/error counters, a latency
//!   histogram, the batch-size distribution, and the cache hit rate, all
//!   exposed as text on `GET /metrics`;
//! * **bounded intake** ([`http`]) — capped header/body sizes, a
//!   per-connection read timeout, a connection cap, and graceful shutdown
//!   that drains every admitted request;
//! * **shadow deployments** ([`shadow`]) — a deterministic sample of
//!   answered traffic mirrored to a second pipeline (its own checkpoint,
//!   retriever, store format, or rerank chain) off the critical path,
//!   with paired overlap/score/lag deltas on `/metrics`.
//!
//! ```no_run
//! use std::sync::Arc;
//! use unimatch_core::{ModelHandle, UniMatch};
//! use unimatch_data::DatasetProfile;
//! use unimatch_serve::{ServeConfig, Server};
//!
//! let log = DatasetProfile::EComp.generate(0.2, 42).filter_min_interactions(3);
//! let handle = ModelHandle::from_checkpoint(UniMatch::default(), "model.json", log)?;
//! let server = Server::start("127.0.0.1:7878", Arc::new(handle), ServeConfig::default())?;
//! println!("serving on {}", server.addr());
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod brownout;
pub mod cache;
pub mod http;
pub mod metrics;
pub mod server;
pub mod shadow;

pub use brownout::{BrownoutControl, BrownoutSpec, BrownoutState, BrownoutStep};
pub use cache::LruCache;
pub use metrics::{Metrics, Route};
pub use server::{
    recommend_body, recommend_body_degraded, target_body, target_body_degraded, ServeConfig,
    Server,
};
pub use shadow::{ShadowSpec, ShadowState};
