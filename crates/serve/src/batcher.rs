//! The micro-batching admission queue.
//!
//! Connection threads do not call the model directly: they enqueue a job
//! and block on a per-job reply channel. A single batcher thread per query
//! route drains the queue, coalescing every job that arrives within a
//! short window (or until a maximum batch size) into **one** call to the
//! batched serving APIs — so the `unimatch-parallel` layer amortizes its
//! thread fan-out across concurrent callers instead of once per request.
//!
//! Correctness invariants:
//!
//! * one model snapshot per batch — the batcher pins `ModelHandle::current`
//!   once per batch, so a hot-swap never splits a batch across versions;
//! * results are identical to unbatched calls — jobs are grouped by `k`
//!   and answered through the tower's
//!   [`MatchPipeline`](unimatch_core::MatchPipeline) handle (the same
//!   stage sequence behind the per-request APIs), so outputs match them
//!   element for element;
//! * the embedding LRU cache is keyed by history and cleared whenever the
//!   pinned model version changes;
//! * every job carries an admission deadline — jobs that out-wait it in
//!   the queue are answered [`JobError::Expired`] (→ 503) instead of
//!   executed, and each dequeue releases one slot of the queue-occupancy
//!   counter the server sheds (→ 429) against;
//! * every answer carries a `degraded` flag — `true` when a shard was
//!   missing from the merge (quorum-tolerated failure) or an active
//!   brownout rung changed response content; healthy full-quality
//!   batches are bitwise identical to the unchecked serving APIs;
//! * when a shadow is armed ([`crate::shadow`]), each successful answer
//!   is considered for deterministic sampling *after* its result is
//!   final — mirroring never changes a reply and never blocks (a full
//!   mirror queue drops and counts).

use crate::brownout::BrownoutState;
use crate::cache::LruCache;
use crate::metrics::{Metrics, Route};
use crate::shadow::ShadowState;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unimatch_ann::Hit;
use unimatch_core::serving::ServingState;
use unimatch_core::{DegradeOptions, ModelHandle};
use unimatch_faults::FaultPoint;

/// Chaos-testing seam: a latency fault armed at `serve.batch` stalls the
/// batcher between collecting a batch and executing it — the way an
/// overloaded executor looks to the admission queue. Disarmed cost is one
/// relaxed atomic load per batch.
const BATCH_FAULT: FaultPoint = FaultPoint::new("serve.batch");

/// A request-level failure, mapped to an HTTP status by the server.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The request is invalid against the current model (→ 400).
    BadRequest(String),
    /// Execution failed (→ 500).
    Internal(String),
    /// The request out-waited its deadline in the admission queue
    /// (→ 503 with `Retry-After`): answering it now would hand the
    /// client a result it has already given up on.
    Expired,
}

/// A batcher answer: the payload plus its `degraded` flag (`true` when a
/// shard was missing from the merge or a brownout rung changed content).
pub type JobResult<T> = Result<(T, bool), JobError>;

/// An enqueued `/recommend` request.
pub struct RecommendJob {
    /// The user's purchase history (dense item ids, oldest first).
    pub history: Vec<u32>,
    /// Number of items requested.
    pub k: usize,
    /// Load-shedding deadline: jobs still queued past this instant are
    /// answered [`JobError::Expired`] instead of executed.
    pub deadline: Instant,
    /// Where the batcher delivers the result.
    pub reply: Sender<JobResult<Vec<Hit>>>,
}

/// An enqueued `/target` request.
pub struct TargetJob {
    /// The dense item id to find an audience for.
    pub item: u32,
    /// Number of users requested.
    pub k: usize,
    /// Load-shedding deadline (see [`RecommendJob::deadline`]).
    pub deadline: Instant,
    /// Where the batcher delivers the result.
    pub reply: Sender<JobResult<Vec<(u32, f32)>>>,
}

/// Batching parameters (see `ServeConfig`).
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// How long the batcher waits for co-travellers after the first job.
    pub window: Duration,
    /// Hard cap on jobs per batch.
    pub max_batch: usize,
    /// Capacity of the history → embedding LRU cache (0 disables).
    pub cache_capacity: usize,
}

/// Collects one batch: blocks for the first job, then drains until the
/// window closes, the batch is full, or the channel disconnects. Every
/// dequeued job releases one slot of `depth`, the admission-side queue
/// occupancy counter the server sheds against.
fn collect_batch<T>(rx: &Receiver<T>, cfg: &BatchConfig, depth: &AtomicUsize) -> Option<Vec<T>> {
    let first = rx.recv().ok()?;
    depth.fetch_sub(1, Ordering::SeqCst);
    let deadline = Instant::now() + cfg.window;
    let mut batch = vec![first];
    while batch.len() < cfg.max_batch {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        match rx.recv_timeout(deadline - now) {
            Ok(job) => {
                depth.fetch_sub(1, Ordering::SeqCst);
                batch.push(job);
            }
            Err(RecvTimeoutError::Timeout) => break,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    Some(batch)
}

/// Splits off and answers the jobs whose deadline passed while they
/// queued; returns the still-live remainder in arrival order.
fn drop_expired<T>(
    batch: Vec<T>,
    deadline_of: impl Fn(&T) -> Instant,
    reply: impl Fn(T),
    metrics: &Metrics,
) -> Vec<T> {
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for job in batch {
        if now >= deadline_of(&job) {
            metrics.shed_deadline();
            reply(job);
        } else {
            live.push(job);
        }
    }
    live
}

/// Runs until every [`Sender`] for `rx` is dropped **and** the queue is
/// drained — exactly the graceful-shutdown contract: accepted requests are
/// answered even while the server is going down.
pub fn run_recommend_batcher(
    rx: Receiver<RecommendJob>,
    handle: Arc<ModelHandle>,
    metrics: Arc<Metrics>,
    cfg: BatchConfig,
    depth: Arc<AtomicUsize>,
    brownout: Option<Arc<BrownoutState>>,
    shadow: Option<Arc<ShadowState>>,
) {
    let mut cache: LruCache<Vec<u32>, Vec<f32>> = LruCache::new(cfg.cache_capacity);
    let mut cache_version = 0u64;
    while let Some(batch) = collect_batch(&rx, &cfg, &depth) {
        BATCH_FAULT.inject_latency();
        let batch = drop_expired(
            batch,
            |j: &RecommendJob| j.deadline,
            |j| {
                let _ = j.reply.send(Err(JobError::Expired));
            },
            &metrics,
        );
        if batch.is_empty() {
            continue;
        }
        metrics.batch(Route::Recommend, batch.len());
        let state = handle.current();
        if state.version != cache_version {
            cache.clear();
            cache_version = state.version;
        }
        // sample the brownout level once per batch — one model snapshot,
        // one degradation level
        let degrade = brownout.as_deref().map_or(DegradeOptions::NONE, BrownoutState::degrade);
        let jobs = batch.len() as u64;
        let start = Instant::now();
        execute_recommend(batch, &state, &metrics, &mut cache, degrade, shadow.as_deref());
        metrics.observe_service(start.elapsed().as_micros() as u64 / jobs);
    }
}

fn execute_recommend(
    batch: Vec<RecommendJob>,
    state: &ServingState,
    metrics: &Metrics,
    cache: &mut LruCache<Vec<u32>, Vec<f32>>,
    degrade: DegradeOptions,
    shadow: Option<&ShadowState>,
) {
    // The batcher executes a pipeline handle: *embed* and *retrieve +
    // rerank* run as explicit stages so the embedding cache can sit
    // between them (see `unimatch_core::pipeline`).
    let pipeline = state.fitted.item_pipeline();
    let num_items = state.fitted.num_items() as u32;
    let d = pipeline.dim();

    // validate; invalid jobs are answered immediately and drop out
    let mut valid: Vec<RecommendJob> = Vec::with_capacity(batch.len());
    for job in batch {
        if job.history.is_empty() {
            let _ = job.reply.send(Err(JobError::BadRequest("history must be non-empty".into())));
        } else if let Some(&bad) = job.history.iter().find(|&&i| i >= num_items) {
            let _ = job.reply.send(Err(JobError::BadRequest(format!(
                "history item {bad} outside the model's {num_items}-item vocabulary"
            ))));
        } else if job.k == 0 {
            let _ = job.reply.send(Err(JobError::BadRequest("k must be at least 1".into())));
        } else {
            valid.push(job);
        }
    }
    if valid.is_empty() {
        return;
    }

    // embeddings: cache first, one batched forward pass for the misses
    let mut queries: Vec<Vec<f32>> = Vec::with_capacity(valid.len());
    let mut miss_idx: Vec<usize> = Vec::new();
    for (i, job) in valid.iter().enumerate() {
        match cache.get(&job.history) {
            Some(e) => {
                metrics.cache_hit();
                queries.push(e.clone());
            }
            None => {
                metrics.cache_miss();
                miss_idx.push(i);
                queries.push(Vec::new());
            }
        }
    }
    if !miss_idx.is_empty() {
        let histories: Vec<&[u32]> =
            miss_idx.iter().map(|&i| valid[i].history.as_slice()).collect();
        let flat = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline.embed(&histories)
        })) {
            Ok(flat) => flat,
            Err(_) => {
                for job in valid {
                    let _ = job
                        .reply
                        .send(Err(JobError::Internal("embedding forward pass panicked".into())));
                }
                return;
            }
        };
        for (slot, &i) in miss_idx.iter().enumerate() {
            let e = flat[slot * d..(slot + 1) * d].to_vec();
            cache.insert(valid[i].history.clone(), e.clone());
            queries[i] = e;
        }
    }

    // one ANN search per distinct k, jobs kept in arrival order within each
    let content_degraded = state.fitted.degrade_affects_content(degrade);
    let mut by_k: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, job) in valid.iter().enumerate() {
        by_k.entry(job.k).or_default().push(i);
    }
    for (k, indices) in by_k {
        let mut flat: Vec<f32> = Vec::with_capacity(indices.len() * d);
        for &i in &indices {
            flat.extend_from_slice(&queries[i]);
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pipeline.run_checked(&flat, k, degrade)
        }));
        match result {
            Ok(Ok((hits, health))) => {
                for &(shard, _) in &health.failures {
                    metrics.shard_error(shard as usize);
                }
                let flag = health.degraded() || content_degraded;
                for (&i, h) in indices.iter().zip(hits) {
                    if flag {
                        metrics.degraded_response(health.degraded());
                    }
                    if let Some(sh) = shadow.filter(|s| s.sample()) {
                        sh.submit_recommend(&valid[i].history, k, &h);
                    }
                    let _ = valid[i].reply.send(Ok((h, flag)));
                }
            }
            Ok(Err(quorum)) => {
                for &i in &indices {
                    let _ = valid[i].reply.send(Err(JobError::Internal(quorum.to_string())));
                }
            }
            Err(_) => {
                for &i in &indices {
                    let _ = valid[i]
                        .reply
                        .send(Err(JobError::Internal("ANN search panicked".into())));
                }
            }
        }
    }
}

/// The `/target` twin of [`run_recommend_batcher`] (no cache: the item
/// tower is a single embedding-table row, there is nothing to save).
pub fn run_target_batcher(
    rx: Receiver<TargetJob>,
    handle: Arc<ModelHandle>,
    metrics: Arc<Metrics>,
    cfg: BatchConfig,
    depth: Arc<AtomicUsize>,
    brownout: Option<Arc<BrownoutState>>,
    shadow: Option<Arc<ShadowState>>,
) {
    while let Some(batch) = collect_batch(&rx, &cfg, &depth) {
        BATCH_FAULT.inject_latency();
        let batch = drop_expired(
            batch,
            |j: &TargetJob| j.deadline,
            |j| {
                let _ = j.reply.send(Err(JobError::Expired));
            },
            &metrics,
        );
        if batch.is_empty() {
            continue;
        }
        metrics.batch(Route::Target, batch.len());
        let state = handle.current();
        let degrade = brownout.as_deref().map_or(DegradeOptions::NONE, BrownoutState::degrade);
        let jobs = batch.len() as u64;
        let start = Instant::now();
        execute_target(batch, &state, &metrics, degrade, shadow.as_deref());
        metrics.observe_service(start.elapsed().as_micros() as u64 / jobs);
    }
}

fn execute_target(
    batch: Vec<TargetJob>,
    state: &ServingState,
    metrics: &Metrics,
    degrade: DegradeOptions,
    shadow: Option<&ShadowState>,
) {
    // gather → retrieve (checked) → rerank → translate, all through the
    // user-tower pipeline handle
    let pipeline = state.fitted.user_pipeline();
    let num_items = state.fitted.num_items() as u32;
    let mut valid: Vec<TargetJob> = Vec::with_capacity(batch.len());
    for job in batch {
        if job.item >= num_items {
            let _ = job.reply.send(Err(JobError::BadRequest(format!(
                "item {} outside the model's {num_items}-item vocabulary",
                job.item
            ))));
        } else if job.k == 0 {
            let _ = job.reply.send(Err(JobError::BadRequest("k must be at least 1".into())));
        } else {
            valid.push(job);
        }
    }
    if valid.is_empty() {
        return;
    }
    let mut by_k: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, job) in valid.iter().enumerate() {
        by_k.entry(job.k).or_default().push(i);
    }
    let content_degraded = state.fitted.degrade_affects_content(degrade);
    for (k, indices) in by_k {
        let items: Vec<u32> = indices.iter().map(|&i| valid[i].item).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let queries = pipeline.gather(&items);
            let (lists, health) = pipeline.run_checked(&queries, k, degrade)?;
            let translated: Vec<Vec<(u32, f32)>> =
                lists.into_iter().map(|hits| pipeline.translate(hits)).collect();
            Ok::<_, unimatch_ann::QuorumError>((translated, health))
        }));
        match result {
            Ok(Ok((lists, health))) => {
                for &(shard, _) in &health.failures {
                    metrics.shard_error(shard as usize);
                }
                let flag = health.degraded() || content_degraded;
                for (&i, users) in indices.iter().zip(lists) {
                    if flag {
                        metrics.degraded_response(health.degraded());
                    }
                    if let Some(sh) = shadow.filter(|s| s.sample()) {
                        sh.submit_target(valid[i].item, k, &users);
                    }
                    let _ = valid[i].reply.send(Ok((users, flag)));
                }
            }
            Ok(Err(quorum)) => {
                for &i in &indices {
                    let _ = valid[i].reply.send(Err(JobError::Internal(quorum.to_string())));
                }
            }
            Err(_) => {
                for &i in &indices {
                    let _ = valid[i]
                        .reply
                        .send(Err(JobError::Internal("ANN search panicked".into())));
                }
            }
        }
    }
}
