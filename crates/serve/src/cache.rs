//! A small, exact LRU cache for repeated user-history embeddings.
//!
//! Production recommendation traffic is heavily skewed: a minority of
//! active users issue most queries, and their histories only change when
//! they buy something. Caching `history → embedding` therefore removes the
//! user-tower forward pass for the hot users while the ANN search (which
//! depends on the *current* model's item index) always runs fresh.
//!
//! The cache is owned by the single batcher thread, so it needs no
//! internal locking; it is invalidated wholesale when the model version
//! changes (embeddings from an old checkpoint must never mix with a new
//! index).

use std::collections::HashMap;
use std::hash::Hash;

const NONE: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map.
///
/// `get` refreshes recency; `insert` evicts the least recently used entry
/// when full. Capacity 0 disables the cache (every `get` misses, `insert`
/// is a no-op).
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    /// Most recently used, or `NONE` when empty.
    head: usize,
    /// Least recently used, or `NONE` when empty.
    tail: usize,
    free: Vec<usize>,
    capacity: usize,
}

impl<K: Clone + Eq + Hash, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            entries: Vec::new(),
            head: NONE,
            tail: NONE,
            free: Vec::new(),
            capacity,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every entry (model reload: embeddings are stale).
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NONE;
        self.tail = NONE;
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &slot = self.map.get(key)?;
        self.detach(slot);
        self.attach_front(slot);
        Some(&self.entries[slot].value)
    }

    /// Inserts (or replaces) `key`, evicting the least recently used entry
    /// when at capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.entries[slot].value = value;
            self.detach(slot);
            self.attach_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NONE);
            self.detach(lru);
            self.map.remove(&self.entries[lru].key);
            self.free.push(lru);
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.entries[s] = Entry { key: key.clone(), value, prev: NONE, next: NONE };
                s
            }
            None => {
                self.entries.push(Entry { key: key.clone(), value, prev: NONE, next: NONE });
                self.entries.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.attach_front(slot);
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.entries[slot].prev, self.entries[slot].next);
        if prev != NONE {
            self.entries[prev].next = next;
        } else if self.head == slot {
            self.head = next;
        }
        if next != NONE {
            self.entries[next].prev = prev;
        } else if self.tail == slot {
            self.tail = prev;
        }
        self.entries[slot].prev = NONE;
        self.entries[slot].next = NONE;
    }

    fn attach_front(&mut self, slot: usize) {
        self.entries[slot].prev = NONE;
        self.entries[slot].next = self.head;
        if self.head != NONE {
            self.entries[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(&10)); // 1 is now most recent
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replace_refreshes_and_updates() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // replace: 1 becomes most recent
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(&11));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&3), Some(&30));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut c: LruCache<Vec<u32>, Vec<f32>> = LruCache::new(4);
        c.insert(vec![1, 2], vec![0.5]);
        c.insert(vec![3], vec![0.25]);
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&vec![1, 2]), None);
        // still usable after clear
        c.insert(vec![9], vec![1.0]);
        assert_eq!(c.get(&vec![9]), Some(&vec![1.0]));
    }

    #[test]
    fn exercises_slot_reuse() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        for i in 0..100u32 {
            c.insert(i, i * 2);
            if i >= 3 {
                assert_eq!(c.len(), 3);
                assert_eq!(c.get(&i), Some(&(i * 2)));
                assert_eq!(c.get(&(i - 3)), None);
            }
        }
        // slab never grows past capacity
        assert!(c.entries.len() <= 3);
    }
}
