//! Brownout control: graceful quality degradation under sustained load.
//!
//! Instead of the binary choice between full-quality responses and load
//! shedding, a brownout ladder orders a set of *quality concessions* from
//! cheapest to most drastic. A small control loop samples queue pressure
//! and walks the ladder one rung at a time:
//!
//! * **level 0** — full quality (the ladder is inactive);
//! * **level n** — the first `n` rungs are applied to every batch.
//!
//! The shipped rungs map onto [`DegradeOptions`]: drop the seeded
//! exploration stage, drop MMR diversity re-ranking, shrink the rerank
//! over-fetch, relax the shard quorum to "any one shard", and — last
//! resort — shed new work at admission with a `503`.
//!
//! ## Spec grammar
//!
//! ```text
//! --brownout 'drop-explore,shrink-overfetch,relax-quorum,shed;high=64;low=4;up=3;down=20;interval-ms=100'
//! ```
//!
//! The first `;`-separated component is the comma-separated rung list (in
//! escalation order, no duplicates); the rest are `key=value` tuning
//! parameters:
//!
//! | key | meaning | default |
//! |-----|---------|---------|
//! | `high` | queue depth above which a sample counts as *pressured* | 32 |
//! | `low` | queue depth at or below which a sample counts as *calm* | 4 |
//! | `up` | consecutive pressured samples before escalating one rung | 3 |
//! | `down` | consecutive calm samples before recovering one rung | 20 |
//! | `interval-ms` | controller sampling period | 100 |
//!
//! A deadline miss observed in the sampling window always counts as
//! pressure, whatever the queue depth. Samples between `low` and `high`
//! are the hysteresis dead band: they reset both streaks and hold the
//! current level, so a load hovering at the threshold cannot make the
//! controller oscillate. `down` defaults much larger than `up` —
//! escalation should be fast and recovery cautious.
//!
//! The current level is exported as the `unimatch_brownout_level` gauge
//! and in the `/healthz` body; when no ladder is configured the gauge
//! stays 0 and the whole plane is dead code on the hot path (one relaxed
//! atomic load per batch).

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use unimatch_core::DegradeOptions;

/// One rung of the brownout ladder — a single quality concession.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BrownoutStep {
    /// Skip the seeded `explore` rerank stage.
    DropExplore,
    /// Skip the `mmr` diversity rerank stage.
    DropMmr,
    /// Shrink the rerank over-fetch from `4k` to `2k`.
    ShrinkOverfetch,
    /// Relax the shard quorum to "any one shard answered".
    RelaxQuorum,
    /// Shed new work at admission with `503` + `Retry-After`.
    Shed,
}

impl BrownoutStep {
    /// All rungs, in canonical (mildest-first) order.
    pub const ALL: [BrownoutStep; 5] = [
        BrownoutStep::DropExplore,
        BrownoutStep::DropMmr,
        BrownoutStep::ShrinkOverfetch,
        BrownoutStep::RelaxQuorum,
        BrownoutStep::Shed,
    ];

    /// The spec-grammar name of this rung.
    pub fn name(self) -> &'static str {
        match self {
            BrownoutStep::DropExplore => "drop-explore",
            BrownoutStep::DropMmr => "drop-mmr",
            BrownoutStep::ShrinkOverfetch => "shrink-overfetch",
            BrownoutStep::RelaxQuorum => "relax-quorum",
            BrownoutStep::Shed => "shed",
        }
    }

    fn parse(name: &str) -> Option<BrownoutStep> {
        BrownoutStep::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// A parse error from [`BrownoutSpec::parse`], with the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrownoutSpecError(String);

impl fmt::Display for BrownoutSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid brownout spec: {}", self.0)
    }
}

impl std::error::Error for BrownoutSpecError {}

/// A parsed `--brownout` ladder: the rung list plus controller tuning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BrownoutSpec {
    /// Quality concessions in escalation order; level `n` applies the
    /// first `n`.
    pub ladder: Vec<BrownoutStep>,
    /// Queue depth above which a sample counts as pressured.
    pub high: usize,
    /// Queue depth at or below which a sample counts as calm.
    pub low: usize,
    /// Consecutive pressured samples before escalating one rung.
    pub up_hold: u32,
    /// Consecutive calm samples before recovering one rung.
    pub down_hold: u32,
    /// Controller sampling period.
    pub interval: Duration,
}

impl BrownoutSpec {
    /// Parses the `--brownout` grammar (see the module docs).
    pub fn parse(spec: &str) -> Result<BrownoutSpec, BrownoutSpecError> {
        let mut parts = spec.split(';');
        let rungs = parts.next().unwrap_or("");
        let mut ladder = Vec::new();
        for name in rungs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let step = BrownoutStep::parse(name)
                .ok_or_else(|| BrownoutSpecError(format!("unknown step {name:?}")))?;
            if ladder.contains(&step) {
                return Err(BrownoutSpecError(format!("duplicate step {name:?}")));
            }
            ladder.push(step);
        }
        if ladder.is_empty() {
            return Err(BrownoutSpecError("ladder has no steps".into()));
        }
        let mut out = BrownoutSpec { ladder, ..BrownoutSpec::default() };
        for param in parts.map(str::trim).filter(|s| !s.is_empty()) {
            let (key, value) = param
                .split_once('=')
                .ok_or_else(|| BrownoutSpecError(format!("expected key=value, got {param:?}")))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|_| BrownoutSpecError(format!("{key}={value:?} is not an integer")))?;
            match key.trim() {
                "high" => out.high = n as usize,
                "low" => out.low = n as usize,
                "up" => out.up_hold = n as u32,
                "down" => out.down_hold = n as u32,
                "interval-ms" => out.interval = Duration::from_millis(n),
                other => {
                    return Err(BrownoutSpecError(format!("unknown parameter {other:?}")));
                }
            }
        }
        if out.low > out.high {
            return Err(BrownoutSpecError(format!(
                "low ({}) must not exceed high ({})",
                out.low, out.high
            )));
        }
        if out.up_hold == 0 || out.down_hold == 0 {
            return Err(BrownoutSpecError("up and down holds must be at least 1".into()));
        }
        if out.interval.is_zero() {
            return Err(BrownoutSpecError("interval-ms must be at least 1".into()));
        }
        Ok(out)
    }
}

impl Default for BrownoutSpec {
    /// The full ladder with default tuning (used when `--brownout` is
    /// given bare step names only).
    fn default() -> BrownoutSpec {
        BrownoutSpec {
            ladder: BrownoutStep::ALL.to_vec(),
            high: 32,
            low: 4,
            up_hold: 3,
            down_hold: 20,
            interval: Duration::from_millis(100),
        }
    }
}

/// The pure hysteresis state machine behind the controller thread —
/// separated from clocks and atomics so the no-oscillation property is
/// pinned by plain unit tests.
#[derive(Debug)]
pub struct BrownoutControl {
    rungs: usize,
    high: usize,
    low: usize,
    up_hold: u32,
    down_hold: u32,
    level: usize,
    pressured_streak: u32,
    calm_streak: u32,
}

impl BrownoutControl {
    /// A controller at level 0 with `spec`'s thresholds.
    pub fn new(spec: &BrownoutSpec) -> BrownoutControl {
        BrownoutControl {
            rungs: spec.ladder.len(),
            high: spec.high,
            low: spec.low,
            up_hold: spec.up_hold,
            down_hold: spec.down_hold,
            level: 0,
            pressured_streak: 0,
            calm_streak: 0,
        }
    }

    /// The current ladder level (0 = full quality).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Feeds one sample — current queue depth plus deadline misses since
    /// the previous sample — and returns the (possibly updated) level.
    ///
    /// Escalates one rung after `up_hold` consecutive pressured samples,
    /// recovers one rung after `down_hold` consecutive calm samples, and
    /// holds steady (resetting both streaks) in the dead band between
    /// `low` and `high`.
    pub fn observe(&mut self, queue_depth: usize, deadline_misses: u64) -> usize {
        let pressured = queue_depth > self.high || deadline_misses > 0;
        let calm = !pressured && queue_depth <= self.low;
        if pressured {
            self.pressured_streak += 1;
            self.calm_streak = 0;
        } else if calm {
            self.calm_streak += 1;
            self.pressured_streak = 0;
        } else {
            self.pressured_streak = 0;
            self.calm_streak = 0;
        }
        if self.pressured_streak >= self.up_hold && self.level < self.rungs {
            self.level += 1;
            self.pressured_streak = 0;
        }
        if self.calm_streak >= self.down_hold && self.level > 0 {
            self.level -= 1;
            self.calm_streak = 0;
        }
        self.level
    }
}

/// The shared brownout plane: the parsed ladder plus the current level,
/// written by the controller thread and read by batchers and routes.
#[derive(Debug)]
pub struct BrownoutState {
    spec: BrownoutSpec,
    level: AtomicUsize,
}

impl BrownoutState {
    /// A state at level 0 over `spec`'s ladder.
    pub fn new(spec: BrownoutSpec) -> BrownoutState {
        BrownoutState { spec, level: AtomicUsize::new(0) }
    }

    /// The parsed spec this state was built from.
    pub fn spec(&self) -> &BrownoutSpec {
        &self.spec
    }

    /// The current ladder level (0 = full quality).
    pub fn level(&self) -> usize {
        self.level.load(Ordering::Relaxed)
    }

    /// Publishes a new level (controller thread only).
    pub fn set_level(&self, level: usize) {
        self.level.store(level.min(self.spec.ladder.len()), Ordering::Relaxed);
    }

    /// The rungs active at the current level.
    pub fn active(&self) -> &[BrownoutStep] {
        &self.spec.ladder[..self.level().min(self.spec.ladder.len())]
    }

    /// The [`DegradeOptions`] implied by the active rungs ([`Shed`]
    /// rungs act at admission, not here).
    ///
    /// [`Shed`]: BrownoutStep::Shed
    pub fn degrade(&self) -> DegradeOptions {
        let mut d = DegradeOptions::NONE;
        for step in self.active() {
            match step {
                BrownoutStep::DropExplore => d.skip_explore = true,
                BrownoutStep::DropMmr => d.skip_mmr = true,
                BrownoutStep::ShrinkOverfetch => d.shrink_overfetch = true,
                BrownoutStep::RelaxQuorum => d.relax_quorum = true,
                BrownoutStep::Shed => {}
            }
        }
        d
    }

    /// Whether the `shed` rung is active — new work should be turned
    /// away at admission.
    pub fn shedding(&self) -> bool {
        self.active().contains(&BrownoutStep::Shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ladder_and_parameters() {
        let spec = BrownoutSpec::parse(
            "drop-explore,shrink-overfetch,shed;high=64;low=8;up=2;down=5;interval-ms=50",
        )
        .expect("valid spec");
        assert_eq!(
            spec.ladder,
            vec![BrownoutStep::DropExplore, BrownoutStep::ShrinkOverfetch, BrownoutStep::Shed]
        );
        assert_eq!((spec.high, spec.low), (64, 8));
        assert_eq!((spec.up_hold, spec.down_hold), (2, 5));
        assert_eq!(spec.interval, Duration::from_millis(50));
    }

    #[test]
    fn bare_ladder_gets_default_tuning() {
        let spec = BrownoutSpec::parse("drop-mmr,relax-quorum").expect("valid spec");
        let defaults = BrownoutSpec::default();
        assert_eq!(spec.ladder, vec![BrownoutStep::DropMmr, BrownoutStep::RelaxQuorum]);
        assert_eq!((spec.high, spec.low), (defaults.high, defaults.low));
        assert_eq!((spec.up_hold, spec.down_hold), (defaults.up_hold, defaults.down_hold));
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "warp-speed",
            "drop-explore,drop-explore",
            "shed;high=3;low=9",
            "shed;up=0",
            "shed;interval-ms=0",
            "shed;frequency=9",
            "shed;high=many",
        ] {
            assert!(BrownoutSpec::parse(bad).is_err(), "spec {bad:?} should be rejected");
        }
    }

    #[test]
    fn escalates_after_sustained_pressure_only() {
        let spec = BrownoutSpec::parse("drop-explore,shed;high=10;low=2;up=3;down=4")
            .expect("valid spec");
        let mut c = BrownoutControl::new(&spec);
        // two pressured samples — below the hold, still level 0
        assert_eq!(c.observe(50, 0), 0);
        assert_eq!(c.observe(50, 0), 0);
        // a calm sample resets the streak
        assert_eq!(c.observe(0, 0), 0);
        assert_eq!(c.observe(50, 0), 0);
        assert_eq!(c.observe(50, 0), 0);
        // third consecutive pressured sample escalates
        assert_eq!(c.observe(50, 0), 1);
        // and the ladder is walked rung by rung, capped at its length
        assert_eq!(c.observe(50, 0), 1);
        assert_eq!(c.observe(50, 0), 1);
        assert_eq!(c.observe(50, 0), 2);
        for _ in 0..10 {
            assert_eq!(c.observe(50, 0), 2, "level must cap at the ladder length");
        }
    }

    #[test]
    fn deadline_misses_count_as_pressure_at_any_depth() {
        let spec =
            BrownoutSpec::parse("shed;high=10;low=2;up=2;down=4").expect("valid spec");
        let mut c = BrownoutControl::new(&spec);
        assert_eq!(c.observe(0, 1), 0);
        assert_eq!(c.observe(0, 3), 1);
    }

    #[test]
    fn dead_band_holds_level_without_oscillation() {
        let spec = BrownoutSpec::parse("drop-explore,shed;high=10;low=2;up=2;down=3")
            .expect("valid spec");
        let mut c = BrownoutControl::new(&spec);
        c.observe(50, 0);
        assert_eq!(c.observe(50, 0), 1);
        // depth hovering in (low, high] — neither streak accumulates, the
        // level is pinned: no step-up, no step-down, however long it lasts
        for _ in 0..100 {
            assert_eq!(c.observe(5, 0), 1, "dead-band samples must hold the level");
        }
        // recovery needs `down` *consecutive* calm samples
        assert_eq!(c.observe(0, 0), 1);
        assert_eq!(c.observe(0, 0), 1);
        assert_eq!(c.observe(5, 0), 1, "dead band resets the calm streak");
        assert_eq!(c.observe(0, 0), 1);
        assert_eq!(c.observe(0, 0), 1);
        assert_eq!(c.observe(0, 0), 0);
        assert_eq!(c.observe(0, 0), 0, "level floors at 0");
    }

    #[test]
    fn state_maps_levels_to_degrade_options() {
        let spec = BrownoutSpec::parse("drop-explore,drop-mmr,shrink-overfetch,relax-quorum,shed")
            .expect("valid spec");
        let state = BrownoutState::new(spec);
        assert!(state.degrade() == DegradeOptions::NONE && !state.shedding());
        state.set_level(2);
        let d = state.degrade();
        assert!(d.skip_explore && d.skip_mmr && !d.shrink_overfetch && !d.relax_quorum);
        assert!(!state.shedding());
        state.set_level(5);
        let d = state.degrade();
        assert!(d.skip_explore && d.skip_mmr && d.shrink_overfetch && d.relax_quorum);
        assert!(state.shedding());
        // set_level clamps to the ladder length
        state.set_level(99);
        assert_eq!(state.level(), 5);
    }
}
