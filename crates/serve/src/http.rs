//! A minimal HTTP/1.1 server-side implementation over `std` sockets.
//!
//! Supports exactly what the serving API needs: one request per
//! connection (`Connection: close`), request line + headers +
//! `Content-Length`-delimited body, and a plain response writer. Bounded
//! everywhere — header block and body sizes are capped, and the caller
//! installs a socket read timeout — so a slow or malicious client can
//! never pin a connection thread.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Maximum accepted size of the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum accepted request body size.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Upper-case method, e.g. `GET`.
    pub method: String,
    /// Request path, e.g. `/recommend` (query strings are not split off).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Syntactically invalid request → respond 400.
    Malformed(&'static str),
    /// Declared body over [`MAX_BODY_BYTES`] → respond 413.
    TooLarge,
    /// Socket timeout or disconnect → no response possible / worthwhile.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Reads one request from the stream. The stream should already carry a
/// read timeout; timeouts surface as [`HttpError::Io`].
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader, MAX_HEAD_BYTES)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty()
        || path.is_empty()
        || parts.next().is_some()
        || !version.starts_with("HTTP/1.")
    {
        return Err(HttpError::Malformed("bad request line"));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("bad method"));
    }

    let mut content_length: usize = 0;
    let mut head_budget = MAX_HEAD_BYTES.saturating_sub(request_line.len());
    loop {
        let line = read_line(&mut reader, head_budget)?;
        head_budget = head_budget.saturating_sub(line.len() + 2);
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("bad header"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// Reads one CRLF-terminated line (without the terminator), rejecting
/// anything longer than `limit`.
fn read_line(reader: &mut impl BufRead, limit: usize) -> Result<String, HttpError> {
    let mut raw = Vec::with_capacity(128);
    loop {
        if raw.len() > limit {
            return Err(HttpError::Malformed("line too long"));
        }
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Err(HttpError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            )));
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                raw.extend_from_slice(&buf[..nl]);
                reader.consume(nl + 1);
                break;
            }
            None => {
                let len = buf.len();
                raw.extend_from_slice(buf);
                reader.consume(len);
            }
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    if raw.len() > limit {
        return Err(HttpError::Malformed("line too long"));
    }
    String::from_utf8(raw).map_err(|_| HttpError::Malformed("non-UTF-8 header"))
}

/// The canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response and flushes. Every response closes the
/// connection (micro-batching already amortizes work across connections,
/// so keep-alive buys little and complicates draining).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_response_with(stream, status, content_type, &[], body)
}

/// [`write_response`] with extra headers — the server uses this to attach
/// `Retry-After` to load-shedding responses. Header names and values must
/// already be valid HTTP token/field text; this writer does no escaping.
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    for (name, value) in extra_headers {
        write!(head, "{name}: {value}\r\n").expect("write to String");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut io::Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(b"POST /recommend HTTP/1.1\r\nHost: x\r\nContent-Length: 8\r\n\r\n{\"k\": 3}")
            .expect("parse");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/recommend");
        assert_eq!(r.body, b"{\"k\": 3}");
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse(b"GET /healthz HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let r = parse(b"POST /x HTTP/1.1\r\ncOnTeNt-LeNgTh: 2\r\n\r\nok").expect("parse");
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            &b"NOT-HTTP\r\n\r\n"[..],
            b"GET /x SPDY/9\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(HttpError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let req = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(req.as_bytes()), Err(HttpError::TooLarge)));
    }

    #[test]
    fn truncated_body_is_io_error() {
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Io(_))
        ));
    }

    #[test]
    fn response_with_extra_headers() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            429,
            "application/json",
            &[("Retry-After", "1")],
            b"{}",
        )
        .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn response_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}").expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }
}
