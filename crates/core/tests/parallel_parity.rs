//! The blocked offline top-k must not depend on the thread configuration:
//! `Parallelism { threads: 1 }` and a forced 4-worker fan-out must produce
//! identical recommendation lists (ids and bitwise scores).
//!
//! Single `#[test]`: the parallel configuration is process-global and
//! cargo runs a binary's test functions concurrently.

use rand::{Rng, SeedableRng};
use unimatch_core::{materialize, top_k_blocked, Parallelism};
use unimatch_eval::EmbeddingMatrix;

#[test]
fn blocked_top_k_is_thread_count_invariant() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x70b5);
    let d = 8;
    let users: Vec<f32> = (0..700 * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let items: Vec<f32> = (0..450 * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let um = EmbeddingMatrix::new(&users, d);
    let im = EmbeddingMatrix::new(&items, d);

    Parallelism::sequential().install_global();
    let seq_lists = top_k_blocked(um, im, 10);
    let seq_rec = materialize(um, im, 5, 5);

    Parallelism::threads(4).with_min_work(1).install_global();
    let par_lists = top_k_blocked(um, im, 10);
    let par_rec = materialize(um, im, 5, 5);
    Parallelism::auto().install_global();

    assert_eq!(seq_lists.len(), par_lists.len());
    for (q, (s, p)) in seq_lists.iter().zip(&par_lists).enumerate() {
        assert_eq!(s.len(), p.len(), "query {q}: list length");
        for ((sid, ss), (pid, ps)) in s.iter().zip(p) {
            assert_eq!(sid, pid, "query {q}: id mismatch");
            assert_eq!(ss.to_bits(), ps.to_bits(), "query {q}: score mismatch");
        }
    }
    assert_eq!(seq_rec.per_user, par_rec.per_user);
    assert_eq!(seq_rec.per_item, par_rec.per_item);
}
