//! The Tab. VII hyperparameters: per-dataset, per-distribution settings
//! found by the paper's grid search, reused as our defaults.

use unimatch_data::DatasetProfile;

/// Which modeling distribution a training run uses (the two columns of
/// Tab. VII).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pathway {
    /// BCE / labeled pairs.
    Bernoulli,
    /// In-batch NCE family / SSM over positive-only pairs.
    Multinomial,
}

/// A tuned hyperparameter triple plus the optimizer learning rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hyperparams {
    /// Batch size.
    pub batch_size: usize,
    /// Softmax temperature τ.
    pub temperature: f32,
    /// Epochs per incremental month.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Hyperparams {
    /// The paper's Tab. VII cell for `(profile, pathway)`.
    pub fn paper(profile: DatasetProfile, pathway: Pathway) -> Self {
        use DatasetProfile::*;
        use Pathway::*;
        let (batch_size, temperature, epochs) = match (profile, pathway) {
            (Books, Bernoulli) => (128, 0.1667, 8),
            (Books, Multinomial) => (64, 0.1667, 3),
            (Electronics, Bernoulli) => (256, 0.5, 6),
            (Electronics, Multinomial) => (64, 0.5, 2),
            (EComp, Bernoulli) => (128, 0.25, 6),
            (EComp, Multinomial) => (64, 0.125, 2),
            (WComp, Bernoulli) => (128, 0.125, 10),
            (WComp, Multinomial) => (64, 0.1, 2),
            // Large is e_comp's shape at serving scale, so it borrows the
            // e_comp cells (it has no Tab. VII column of its own).
            (Large, Bernoulli) => (128, 0.25, 6),
            (Large, Multinomial) => (64, 0.125, 2),
        };
        Hyperparams { batch_size, temperature, epochs, lr: 0.01 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multinomial_always_needs_fewer_epochs() {
        for p in DatasetProfile::ALL {
            let b = Hyperparams::paper(p, Pathway::Bernoulli);
            let m = Hyperparams::paper(p, Pathway::Multinomial);
            assert!(m.epochs < b.epochs, "{p:?}");
            assert_eq!(m.batch_size, 64);
        }
    }

    #[test]
    fn books_matches_table_vii() {
        let h = Hyperparams::paper(DatasetProfile::Books, Pathway::Bernoulli);
        assert_eq!(h.batch_size, 128);
        assert!((h.temperature - 0.1667).abs() < 1e-6);
        assert_eq!(h.epochs, 8);
    }
}
