//! `unimatch-cli` — the framework as a command-line tool.
//!
//! ```text
//! unimatch-cli generate  --profile ecomp --scale 0.5 --seed 7 --out log.csv
//! unimatch-cli fit       --log log.csv --out model.json
//! unimatch-cli recommend --model model.json --log log.csv --user <id> --k 10
//! unimatch-cli target    --model model.json --log log.csv --item <id> --k 10
//! unimatch-cli evaluate  --model model.json --log log.csv
//! ```
//!
//! Logs are CSV with a `user,item,day` header; user and item ids may be
//! arbitrary strings — they are interned to dense ids and the vocabularies
//! are persisted next to the model (`<model>.users.json`,
//! `<model>.items.json`) so results translate back.

use std::collections::HashMap;
use std::process::exit;
use unimatch_core::{evaluate, load_model, save_model, UniMatch, UniMatchConfig};
use unimatch_data::vocab::Vocab;
use unimatch_data::{DatasetProfile, InteractionLog};
use unimatch_eval::ProtocolConfig;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        usage("missing command");
    };
    let flags = parse_flags(&argv[1..]);
    // every command funnels through the same compute kernels, so the thread
    // configuration is installed once, up front (0 = auto-detect)
    unimatch_parallel::Parallelism::threads(flag_or(&flags, "threads", 0)).install_global();
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "fit" => cmd_fit(&flags),
        "recommend" => cmd_recommend(&flags),
        "target" => cmd_target(&flags),
        "evaluate" => cmd_evaluate(&flags),
        other => usage(&format!("unknown command {other}")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: unimatch-cli <generate|fit|recommend|target|evaluate> [--flag value]...\n\
         \n\
         generate  --profile <books|electronics|ecomp|wcomp> [--scale F] [--seed N] --out FILE\n\
         fit       --log FILE --out FILE [--epochs N] [--temperature F] [--batch N] [--seed N]\n\
         recommend --model FILE --log FILE --user ID [--k N]\n\
         target    --model FILE --log FILE --item ID [--k N]\n\
         evaluate  --model FILE --log FILE [--top-n N] [--negatives N] [--seed N]\n\
         \n\
         every command also accepts --threads N (worker threads for the\n\
         compute kernels; 0 = auto-detect, 1 = exact sequential execution)"
    );
    exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--").unwrap_or_else(|| usage(&format!("expected flag, got {}", args[i])));
        let Some(value) = args.get(i + 1) else {
            usage(&format!("flag --{key} needs a value"));
        };
        out.insert(key.to_string(), value.clone());
        i += 2;
    }
    out
}

fn flag<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).unwrap_or_else(|| usage(&format!("missing required --{key}"))).as_str()
}

fn flag_or<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| usage(&format!("invalid value for --{key}: {v}"))),
    }
}

fn cmd_generate(flags: &HashMap<String, String>) {
    let profile = match flag(flags, "profile").to_ascii_lowercase().as_str() {
        "books" => DatasetProfile::Books,
        "electronics" => DatasetProfile::Electronics,
        "ecomp" | "e_comp" => DatasetProfile::EComp,
        "wcomp" | "w_comp" => DatasetProfile::WComp,
        other => usage(&format!("unknown profile {other}")),
    };
    let scale: f64 = flag_or(flags, "scale", 0.5);
    let seed: u64 = flag_or(flags, "seed", 42);
    let out = flag(flags, "out");
    let log = profile.generate(scale, seed);
    let csv = unimatch_data::csv::log_to_csv(&log, None, None);
    std::fs::write(out, csv).unwrap_or_else(|e| usage(&format!("cannot write {out}: {e}")));
    println!(
        "wrote {} interactions ({} users, {} items, {} months) to {out}",
        log.len(),
        log.distinct_users(),
        log.distinct_items(),
        log.span_months()
    );
}

fn read_log(path: &str) -> (InteractionLog, Vocab, Vocab) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
    unimatch_data::csv::log_from_csv(&text).unwrap_or_else(|e| usage(&e.to_string()))
}

fn vocab_paths(model_path: &str) -> (String, String) {
    (format!("{model_path}.users.json"), format!("{model_path}.items.json"))
}

fn cmd_fit(flags: &HashMap<String, String>) {
    let (log, users, items) = read_log(flag(flags, "log"));
    let out = flag(flags, "out");
    let config = UniMatchConfig {
        epochs_per_month: flag_or(flags, "epochs", 2),
        temperature: flag_or(flags, "temperature", 0.15),
        batch_size: flag_or(flags, "batch", 64),
        seed: flag_or(flags, "seed", 42),
        parallelism: unimatch_parallel::Parallelism::threads(flag_or(flags, "threads", 0)),
        ..Default::default()
    };
    let filtered = log.filter_min_interactions(3);
    println!(
        "fitting on {} interactions ({} after min-count filtering)…",
        log.len(),
        filtered.len()
    );
    let fitted = UniMatch::new(config).fit(filtered);
    save_model(&fitted.model, out).unwrap_or_else(|e| usage(&format!("cannot write {out}: {e}")));
    let (up, ip) = vocab_paths(out);
    std::fs::write(&up, serde_json::to_vec(&users).expect("vocab json"))
        .unwrap_or_else(|e| usage(&format!("cannot write {up}: {e}")));
    std::fs::write(&ip, serde_json::to_vec(&items).expect("vocab json"))
        .unwrap_or_else(|e| usage(&format!("cannot write {ip}: {e}")));
    println!(
        "model ({} parameters) saved to {out}; vocabularies alongside",
        fitted.model.num_parameters()
    );
}

fn load_serving(flags: &HashMap<String, String>) -> (unimatch_core::FittedUniMatch, Vocab, Vocab) {
    let model_path = flag(flags, "model");
    let model = load_model(model_path)
        .unwrap_or_else(|e| usage(&format!("cannot load {model_path}: {e}")));
    let (log, _, _) = read_log(flag(flags, "log"));
    let (up, ip) = vocab_paths(model_path);
    let users: Vocab = serde_json::from_slice(
        &std::fs::read(&up).unwrap_or_else(|e| usage(&format!("cannot read {up}: {e}"))),
    )
    .unwrap_or_else(|e| usage(&format!("bad vocab {up}: {e}")));
    let items: Vocab = serde_json::from_slice(
        &std::fs::read(&ip).unwrap_or_else(|e| usage(&format!("cannot read {ip}: {e}"))),
    )
    .unwrap_or_else(|e| usage(&format!("bad vocab {ip}: {e}")));
    let config = UniMatchConfig {
        parallelism: unimatch_parallel::Parallelism::threads(flag_or(flags, "threads", 0)),
        ..Default::default()
    };
    let fitted = UniMatch::new(config).serve(model, log.filter_min_interactions(3));
    (fitted, users, items)
}

fn cmd_recommend(flags: &HashMap<String, String>) {
    let (fitted, users, items) = load_serving(flags);
    let user_ext = flag(flags, "user");
    let k: usize = flag_or(flags, "k", 10);
    let Some(user) = users.get(user_ext) else {
        usage(&format!("unknown user id {user_ext}"));
    };
    let Some(ix) = fitted.user_pool.index_of(user) else {
        usage(&format!("user {user_ext} has no usable history"));
    };
    let history = fitted.user_pool.history(ix).to_vec();
    println!("top {k} items for user {user_ext} (history of {} purchases):", history.len());
    for hit in fitted.recommend_items(&history, k) {
        let name = items.external(hit.id).unwrap_or("?");
        println!("  {name:<12} score {:+.4}", hit.score);
    }
}

fn cmd_target(flags: &HashMap<String, String>) {
    let (fitted, users, items) = load_serving(flags);
    let item_ext = flag(flags, "item");
    let k: usize = flag_or(flags, "k", 10);
    let Some(item) = items.get(item_ext) else {
        usage(&format!("unknown item id {item_ext}"));
    };
    println!("top {k} users to target for item {item_ext}:");
    for (user, score) in fitted.target_users(item, k) {
        let name = users.external(user).unwrap_or("?");
        println!("  {name:<12} score {score:+.4}");
    }
}

fn cmd_evaluate(flags: &HashMap<String, String>) {
    let model_path = flag(flags, "model");
    let model = load_model(model_path)
        .unwrap_or_else(|e| usage(&format!("cannot load {model_path}: {e}")));
    let (log, _, _) = read_log(flag(flags, "log"));
    let prepared = unimatch_core::PreparedData::from_log(
        log.filter_min_interactions(3),
        model.config().max_seq_len,
    );
    let protocol = ProtocolConfig {
        top_n: flag_or(flags, "top-n", 10),
        negatives: flag_or(flags, "negatives", 99),
    };
    let seed: u64 = flag_or(flags, "seed", 7);
    let out = evaluate(&model, &prepared.split, &protocol, prepared.max_seq_len, seed);
    println!(
        "IR : Recall@{} {:.2}%  NDCG@{} {:.2}%  ({} cases)",
        protocol.top_n,
        100.0 * out.ir.recall,
        protocol.top_n,
        100.0 * out.ir.ndcg,
        out.ir_cases
    );
    println!(
        "UT : Recall@{} {:.2}%  NDCG@{} {:.2}%  ({} cases)",
        protocol.top_n,
        100.0 * out.ut.recall,
        protocol.top_n,
        100.0 * out.ut.ndcg,
        out.ut_cases
    );
    println!("AVG NDCG {:.2}%", 100.0 * out.avg_ndcg());
}
