//! Model checkpoint persistence.
//!
//! The incremental-training story of Sec. III-B3 only works in production
//! if last month's parameters survive to this month: a bundle of
//! `(ModelConfig, ParamSet)` is serialized as JSON (human-inspectable,
//! diff-able; the models are small enough — tens of thousands of floats —
//! that a binary format buys nothing).
//!
//! Serialization is hand-rolled over [`unimatch_data::json`] rather than
//! `serde_json` so that checkpoint round-trips work in the offline
//! verification environment (where the external crates are API stubs) —
//! the online serving layer's `/reload` depends on this path actually
//! functioning. The emitted document matches the shape serde would
//! produce for the same structs, so existing checkpoints keep loading.
//!
//! Writes are crash-safe: [`save_model`] writes a `.tmp` sibling and then
//! `rename`s it into place, so a crash mid-write can never leave a torn
//! checkpoint behind for a later load (or a serving `/reload`) to trip
//! over — the destination either holds the old complete checkpoint or the
//! new complete one.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::path::Path;
use unimatch_data::json::Json;
use unimatch_models::{Aggregator, ContextExtractor, ModelConfig, TwoTower};
use unimatch_tensor::Tensor;

const FORMAT_VERSION: u64 = 1;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

fn extractor_to_json(e: ContextExtractor) -> Json {
    match e {
        ContextExtractor::YoutubeDnn => Json::str("YoutubeDnn"),
        ContextExtractor::Cnn { kernel } => {
            Json::obj(vec![("Cnn", Json::obj(vec![("kernel", Json::int(kernel))]))])
        }
        ContextExtractor::Gru => Json::str("Gru"),
        ContextExtractor::Lstm => Json::str("Lstm"),
        ContextExtractor::Transformer => Json::str("Transformer"),
    }
}

fn aggregator_to_json(a: Aggregator) -> Json {
    Json::str(match a {
        Aggregator::Mean => "Mean",
        Aggregator::Last => "Last",
        Aggregator::Max => "Max",
        Aggregator::Attention => "Attention",
    })
}

fn tensor_to_json(t: &Tensor) -> Json {
    Json::obj(vec![
        ("shape", Json::Arr(t.shape().dims().iter().map(|&d| Json::int(d)).collect())),
        ("data", Json::Arr(t.data().iter().map(|&x| Json::F32(x)).collect())),
    ])
}

/// Serializes a model to JSON bytes.
pub fn model_to_json(model: &TwoTower) -> Vec<u8> {
    let cfg = model.config();
    let config = Json::obj(vec![
        ("num_items", Json::int(cfg.num_items)),
        ("embed_dim", Json::int(cfg.embed_dim)),
        ("max_seq_len", Json::int(cfg.max_seq_len)),
        ("extractor", extractor_to_json(cfg.extractor)),
        ("aggregator", aggregator_to_json(cfg.aggregator)),
        ("temperature", Json::F32(cfg.temperature)),
        ("normalize", Json::Bool(cfg.normalize)),
    ]);
    let params = Json::Arr(
        model
            .params
            .iter()
            .map(|(_, p)| {
                Json::obj(vec![
                    ("name", Json::str(p.name.clone())),
                    ("value", tensor_to_json(&p.value)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("format_version", Json::int(FORMAT_VERSION as usize)),
        ("config", config),
        ("params", Json::obj(vec![("params", params)])),
    ])
    .to_bytes()
}

// ---------------------------------------------------------------------------
// deserialization
// ---------------------------------------------------------------------------

fn field<'a>(v: &'a Json, key: &str) -> io::Result<&'a Json> {
    v.get(key).ok_or_else(|| bad(format!("checkpoint missing field {key}")))
}

fn usize_field(v: &Json, key: &str) -> io::Result<usize> {
    field(v, key)?
        .as_u64()
        .map(|x| x as usize)
        .ok_or_else(|| bad(format!("checkpoint field {key} is not an integer")))
}

fn extractor_from_json(v: &Json) -> io::Result<ContextExtractor> {
    if let Some(s) = v.as_str() {
        return match s {
            "YoutubeDnn" => Ok(ContextExtractor::YoutubeDnn),
            "Gru" => Ok(ContextExtractor::Gru),
            "Lstm" => Ok(ContextExtractor::Lstm),
            "Transformer" => Ok(ContextExtractor::Transformer),
            other => Err(bad(format!("unknown extractor {other}"))),
        };
    }
    if let Some(inner) = v.get("Cnn") {
        return Ok(ContextExtractor::Cnn { kernel: usize_field(inner, "kernel")? });
    }
    Err(bad("unrecognized extractor encoding"))
}

fn aggregator_from_json(v: &Json) -> io::Result<Aggregator> {
    match v.as_str() {
        Some("Mean") => Ok(Aggregator::Mean),
        Some("Last") => Ok(Aggregator::Last),
        Some("Max") => Ok(Aggregator::Max),
        Some("Attention") => Ok(Aggregator::Attention),
        _ => Err(bad("unrecognized aggregator encoding")),
    }
}

fn tensor_from_json(v: &Json) -> io::Result<Tensor> {
    let shape: Vec<usize> = field(v, "shape")?
        .as_array()
        .ok_or_else(|| bad("tensor shape is not an array"))?
        .iter()
        .map(|d| d.as_u64().map(|x| x as usize).ok_or_else(|| bad("bad tensor dimension")))
        .collect::<io::Result<_>>()?;
    let data: Vec<f32> = field(v, "data")?
        .as_array()
        .ok_or_else(|| bad("tensor data is not an array"))?
        .iter()
        .map(|x| match x {
            Json::Null => Ok(f32::NAN), // serde_json writes non-finite floats as null
            _ => x.as_f32().ok_or_else(|| bad("bad tensor element")),
        })
        .collect::<io::Result<_>>()?;
    let numel: usize = shape.iter().product();
    if shape.is_empty() || shape.iter().any(|&d| d == 0) || numel != data.len() {
        return Err(bad(format!(
            "tensor shape {shape:?} does not match {} data elements",
            data.len()
        )));
    }
    Ok(Tensor::from_vec(shape.as_slice(), data))
}

/// Reconstructs a model from JSON bytes: rebuilds the architecture from
/// the stored config (parameter registration order is deterministic), then
/// verifies every stored parameter matches the rebuilt structure by name
/// and shape before swapping it in.
pub fn model_from_json(bytes: &[u8]) -> io::Result<TwoTower> {
    let doc = Json::parse(bytes).map_err(|e| bad(e.to_string()))?;
    let version = field(&doc, "format_version")?
        .as_u64()
        .ok_or_else(|| bad("format_version is not an integer"))?;
    if version != FORMAT_VERSION {
        return Err(bad(format!("unsupported checkpoint version {version}")));
    }
    let cfg = field(&doc, "config")?;
    let config = ModelConfig {
        num_items: usize_field(cfg, "num_items")?,
        embed_dim: usize_field(cfg, "embed_dim")?,
        max_seq_len: usize_field(cfg, "max_seq_len")?,
        extractor: extractor_from_json(field(cfg, "extractor")?)?,
        aggregator: aggregator_from_json(field(cfg, "aggregator")?)?,
        temperature: field(cfg, "temperature")?
            .as_f32()
            .ok_or_else(|| bad("temperature is not a number"))?,
        normalize: field(cfg, "normalize")?
            .as_bool()
            .ok_or_else(|| bad("normalize is not a boolean"))?,
    };
    let stored = field(field(&doc, "params")?, "params")?
        .as_array()
        .ok_or_else(|| bad("params is not an array"))?;

    // the RNG only initializes weights we immediately overwrite
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = TwoTower::new(config, &mut rng);
    if model.params.len() != stored.len() {
        return Err(bad(format!(
            "checkpoint has {} parameters, architecture expects {}",
            stored.len(),
            model.params.len()
        )));
    }
    for (fresh, entry) in model.params.ids().zip(stored.iter()) {
        let name = field(entry, "name")?
            .as_str()
            .ok_or_else(|| bad("parameter name is not a string"))?;
        let value = tensor_from_json(field(entry, "value")?)?;
        let expected_name = model.params.name(fresh);
        let expected_shape = model.params.shape(fresh).clone();
        if expected_name != name || &expected_shape != value.shape() {
            return Err(bad(format!(
                "checkpoint parameter {name} {} does not match architecture {expected_name} {expected_shape}",
                value.shape(),
            )));
        }
        *model.params.get_mut(fresh) = value;
    }
    Ok(model)
}

// ---------------------------------------------------------------------------
// files
// ---------------------------------------------------------------------------

/// Saves a model checkpoint to a file, atomically.
///
/// The bytes are written to a `.tmp` sibling in the same directory and
/// `rename`d into place, so concurrent readers (and a serving `/reload`
/// racing a trainer) always observe either the previous complete
/// checkpoint or the new complete one — never a torn prefix.
pub fn save_model(model: &TwoTower, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, model_to_json(model))?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// Loads a model checkpoint from a file.
pub fn load_model(path: impl AsRef<Path>) -> io::Result<TwoTower> {
    model_from_json(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};
    use unimatch_data::SeqBatch;

    fn model(extractor: ContextExtractor) -> TwoTower {
        let mut rng = StdRng::seed_from_u64(77);
        TwoTower::new(
            ModelConfig {
                num_items: 20,
                embed_dim: 8,
                max_seq_len: 6,
                extractor,
                aggregator: Aggregator::Attention,
                temperature: 0.2,
                normalize: true,
            },
            &mut rng,
        )
    }

    /// A per-test, per-process temp path: parallel test runs (and repeated
    /// runs of the same binary) never collide on a fixed file name.
    fn unique_tmp(name: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "unimatch_persist_{}_{}_{}",
            name,
            std::process::id(),
            n
        ));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    #[test]
    fn round_trip_preserves_inference() {
        for extractor in ContextExtractor::ALL {
            let m = model(extractor);
            let restored = model_from_json(&model_to_json(&m)).expect("round trip");
            let h = vec![1u32, 5, 9];
            let batch = SeqBatch::from_histories(&[&h], 6);
            assert_eq!(
                m.infer_users(&batch).data(),
                restored.infer_users(&batch).data(),
                "{}",
                extractor.label()
            );
            assert_eq!(m.infer_items().data(), restored.infer_items().data());
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let m = model(ContextExtractor::Transformer);
        let restored = model_from_json(&model_to_json(&m)).expect("round trip");
        for (id, p) in m.params.iter() {
            assert_eq!(p.value.data(), restored.params.get(id).data(), "{}", p.name);
        }
    }

    #[test]
    fn corrupted_checkpoint_rejected() {
        assert!(model_from_json(b"not json").is_err());
        // valid JSON, wrong schema
        assert!(model_from_json(b"{\"format_version\":1}").is_err());
        // truncated document — what a torn write would have produced
        let whole = model_to_json(&model(ContextExtractor::YoutubeDnn));
        assert!(model_from_json(&whole[..whole.len() / 2]).is_err());
    }

    #[test]
    fn mismatched_architecture_rejected() {
        // serialize a GRU model, then tamper with the config to claim LSTM:
        // the parameter names will not match and loading must fail
        let m = model(ContextExtractor::Gru);
        let json = String::from_utf8(model_to_json(&m)).expect("utf8");
        let tampered = json.replace("\"Gru\"", "\"Lstm\"");
        assert!(model_from_json(tampered.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = unique_tmp("file_round_trip");
        let path = dir.join("model.json");
        let m = model(ContextExtractor::YoutubeDnn);
        save_model(&m, &path).expect("save");
        let restored = load_model(&path).expect("load");
        assert_eq!(m.params.num_scalars(), restored.params.num_scalars());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_leaves_no_tmp_sibling() {
        let dir = unique_tmp("no_tmp");
        let path = dir.join("model.json");
        let m = model(ContextExtractor::YoutubeDnn);
        save_model(&m, &path).expect("save");
        assert!(path.exists());
        assert!(!dir.join("model.json.tmp").exists());
        // overwriting an existing checkpoint is also atomic
        save_model(&m, &path).expect("re-save");
        assert!(!dir.join("model.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
