//! Model checkpoint persistence.
//!
//! The incremental-training story of Sec. III-B3 only works in production
//! if last month's parameters survive to this month: a bundle of
//! `(ModelConfig, ParamSet)` is serialized as JSON (human-inspectable,
//! diff-able; the models are small enough — tens of thousands of floats —
//! that a binary format buys nothing).
//!
//! Serialization is hand-rolled over [`unimatch_data::json`] rather than
//! `serde_json` so that checkpoint round-trips work in the offline
//! verification environment (where the external crates are API stubs) —
//! the online serving layer's `/reload` depends on this path actually
//! functioning. The emitted document matches the shape serde would
//! produce for the same structs, so existing checkpoints keep loading.
//!
//! Writes are crash-safe: [`save_model`] writes a `.tmp` sibling and then
//! `rename`s it into place, so a crash mid-write can never leave a torn
//! checkpoint behind for a later load (or a serving `/reload`) to trip
//! over — the destination either holds the old complete checkpoint or the
//! new complete one.
//!
//! Loads are validated end to end. Format v2 documents carry a magic
//! string and an FNV-1a checksum over the *values* (config fields,
//! parameter names, shapes, and f32 bit patterns), so a flipped bit that
//! still parses as valid JSON is caught before the parameters reach a
//! model; truncation is caught by the JSON parser; a parameter that
//! decodes to a non-finite float is rejected by name. Legacy v1
//! documents (no magic/checksum) still load, with everything but the
//! checksum validated. [`load_model_with_retry`] adds bounded
//! retry-with-backoff for *transient* I/O errors — the serving layer
//! uses it so a checkpoint on flaky storage does not fail a `/reload`
//! that a second read would have satisfied.
//!
//! Fault seams for the chaos suites: `persist.save` and `persist.load`
//! can surface injected transient I/O errors, and `persist.load.corrupt`
//! flips a bit in the bytes read from disk (exercising the checksum).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use unimatch_ann::{
    open_table_with, read_table_header, write_table, EmbeddingStore, RowFormat,
};
use unimatch_data::json::Json;
use unimatch_data::Marginals;
use unimatch_faults::FaultPoint;
use unimatch_models::{Aggregator, ContextExtractor, ModelConfig, TwoTower};
use unimatch_tensor::Tensor;

const FORMAT_VERSION: u64 = 2;
/// Identifies a checkpoint file as ours before any schema is assumed.
const MAGIC: &str = "unimatch-model";

/// The item table is always the first registered parameter, under this
/// name — the embedding *section* of a checkpoint: a contiguous run of
/// floats ([`item_store_from_json_value`] decodes it straight into an
/// aligned [`EmbeddingStore`] arena, skipping `ParamSet` entirely).
const EMBEDDING_PARAM: &str = "item_embedding";

/// Must match `unimatch_models`' normalization epsilon bit-for-bit: the
/// store decoded from a checkpoint has to equal `TwoTower::infer_items`
/// exactly.
const NORM_EPS: f32 = 1e-12;

const SAVE_FAULT: FaultPoint = FaultPoint::new("persist.save");
const LOAD_FAULT: FaultPoint = FaultPoint::new("persist.load");
const LOAD_CORRUPT_FAULT: FaultPoint = FaultPoint::new("persist.load.corrupt");

pub(crate) fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------------------
// value checksum
// ---------------------------------------------------------------------------

/// FNV-1a 64 running over a byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, x: u64) {
        self.update(&x.to_le_bytes());
    }
}

/// Checksums the model's *values* — config fields, parameter names,
/// shapes, and exact f32 bit patterns — independent of JSON formatting.
/// Computed from the in-memory model on both the save and load side, so
/// any corruption that survives parsing and architecture validation
/// still has to reproduce this hash to go unnoticed.
fn checksum_model(model: &TwoTower) -> u64 {
    let cfg = model.config();
    let mut h = Fnv::new();
    h.u64(cfg.num_items as u64);
    h.u64(cfg.embed_dim as u64);
    h.u64(cfg.max_seq_len as u64);
    match cfg.extractor {
        ContextExtractor::YoutubeDnn => h.u64(1),
        ContextExtractor::Cnn { kernel } => {
            h.u64(2);
            h.u64(kernel as u64);
        }
        ContextExtractor::Gru => h.u64(3),
        ContextExtractor::Lstm => h.u64(4),
        ContextExtractor::Transformer => h.u64(5),
    }
    h.u64(match cfg.aggregator {
        Aggregator::Mean => 1,
        Aggregator::Last => 2,
        Aggregator::Max => 3,
        Aggregator::Attention => 4,
    });
    h.u64(cfg.temperature.to_bits() as u64);
    h.u64(cfg.normalize as u64);
    for (_, p) in model.params.iter() {
        h.update(p.name.as_bytes());
        h.update(&[0xff]);
        for &d in p.value.shape().dims() {
            h.u64(d as u64);
        }
        for &x in p.value.data() {
            h.update(&x.to_bits().to_le_bytes());
        }
    }
    h.0
}

/// Checksums the embedding section alone — name, shape, raw f32 bit
/// patterns of the item table — so the store loader can verify its
/// section without reconstructing the rest of the model.
fn checksum_embedding_section(shape: &[usize], bits: impl Iterator<Item = u32>) -> u64 {
    let mut h = Fnv::new();
    h.update(EMBEDDING_PARAM.as_bytes());
    h.update(&[0xff]);
    for &d in shape {
        h.u64(d as u64);
    }
    for b in bits {
        h.update(&b.to_le_bytes());
    }
    h.0
}

/// Checksums the optional marginals section — floors, lengths, and the
/// exact f32 bit patterns of both tables — so a corrupted section is
/// caught before a debias stage reads it.
fn checksum_marginals(m: &Marginals) -> u64 {
    let mut h = Fnv::new();
    h.update(b"marginals");
    h.update(&[0xff]);
    h.u64(m.floor_u().to_bits() as u64);
    h.u64(m.floor_i().to_bits() as u64);
    h.u64(m.log_pu_all().len() as u64);
    for &x in m.log_pu_all() {
        h.update(&x.to_bits().to_le_bytes());
    }
    h.u64(m.log_pi_all().len() as u64);
    for &x in m.log_pi_all() {
        h.update(&x.to_bits().to_le_bytes());
    }
    h.0
}

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

fn extractor_to_json(e: ContextExtractor) -> Json {
    match e {
        ContextExtractor::YoutubeDnn => Json::str("YoutubeDnn"),
        ContextExtractor::Cnn { kernel } => {
            Json::obj(vec![("Cnn", Json::obj(vec![("kernel", Json::int(kernel))]))])
        }
        ContextExtractor::Gru => Json::str("Gru"),
        ContextExtractor::Lstm => Json::str("Lstm"),
        ContextExtractor::Transformer => Json::str("Transformer"),
    }
}

fn aggregator_to_json(a: Aggregator) -> Json {
    Json::str(match a {
        Aggregator::Mean => "Mean",
        Aggregator::Last => "Last",
        Aggregator::Max => "Max",
        Aggregator::Attention => "Attention",
    })
}

pub(crate) fn tensor_to_json(t: &Tensor) -> Json {
    Json::obj(vec![
        ("shape", Json::Arr(t.shape().dims().iter().map(|&d| Json::int(d)).collect())),
        ("data", Json::Arr(t.data().iter().map(|&x| Json::F32(x)).collect())),
    ])
}

/// Serializes a model to a format-v2 JSON document (magic + value
/// checksum). Exposed at the `Json` level so the durable-training runner
/// can embed a model document inside its per-month checkpoint files.
pub fn model_to_json_value(model: &TwoTower) -> Json {
    let cfg = model.config();
    let config = Json::obj(vec![
        ("num_items", Json::int(cfg.num_items)),
        ("embed_dim", Json::int(cfg.embed_dim)),
        ("max_seq_len", Json::int(cfg.max_seq_len)),
        ("extractor", extractor_to_json(cfg.extractor)),
        ("aggregator", aggregator_to_json(cfg.aggregator)),
        ("temperature", Json::F32(cfg.temperature)),
        ("normalize", Json::Bool(cfg.normalize)),
    ]);
    let params = Json::Arr(
        model
            .params
            .iter()
            .map(|(_, p)| {
                Json::obj(vec![
                    ("name", Json::str(p.name.clone())),
                    ("value", tensor_to_json(&p.value)),
                ])
            })
            .collect(),
    );
    let embedding_checksum = embedding_checksum_of(model);
    Json::obj(vec![
        ("magic", Json::str(MAGIC)),
        ("format_version", Json::int(FORMAT_VERSION as usize)),
        ("config", config),
        ("params", Json::obj(vec![("params", params)])),
        ("embedding_checksum", Json::str(format!("{embedding_checksum:016x}"))),
        ("checksum", Json::str(format!("{:016x}", checksum_model(model)))),
    ])
}

/// Serializes a model to JSON bytes.
pub fn model_to_json(model: &TwoTower) -> Vec<u8> {
    model_to_json_value(model).to_bytes()
}

/// The embedding-section checksum of an in-memory model — the value a
/// v2 save writes as `embedding_checksum`, and the `source_checksum`
/// that binds a quantized sidecar table to its source checkpoint.
pub fn embedding_checksum_of(model: &TwoTower) -> u64 {
    model
        .params
        .iter()
        .find(|(_, p)| p.name == EMBEDDING_PARAM)
        .map(|(_, p)| {
            checksum_embedding_section(
                p.value.shape().dims(),
                p.value.data().iter().map(|x| x.to_bits()),
            )
        })
        .expect("model has an item_embedding parameter")
}

fn f32_array(xs: &[f32]) -> Json {
    Json::Arr(xs.iter().map(|&x| Json::F32(x)).collect())
}

/// Serializes the `p̂(u)`/`p̂(i)` marginals as the checkpoint's optional
/// `marginals` section (with its own FNV-1a checksum over the exact
/// bits), so the serving-time debias stage works without the training
/// set on disk.
pub fn marginals_to_json_value(m: &Marginals) -> Json {
    Json::obj(vec![
        ("log_pu", f32_array(m.log_pu_all())),
        ("log_pi", f32_array(m.log_pi_all())),
        ("floor_u", Json::F32(m.floor_u())),
        ("floor_i", Json::F32(m.floor_i())),
        ("checksum", Json::str(format!("{:016x}", checksum_marginals(m)))),
    ])
}

fn f32_array_field(v: &Json, key: &str) -> io::Result<Vec<f32>> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| bad(format!("marginals field {key} is not an array")))?
        .iter()
        .map(|x| {
            x.as_f32()
                .filter(|v| v.is_finite())
                .ok_or_else(|| bad(format!("marginals field {key} holds a non-finite value")))
        })
        .collect()
}

/// Decodes a checkpoint document's optional `marginals` section.
/// Returns `Ok(None)` when the section is absent (older checkpoints);
/// a present-but-corrupt section is an error, not a silent `None` — a
/// configured debias stage should fail loudly rather than serve
/// unpenalized scores.
pub fn marginals_from_json_value(doc: &Json) -> io::Result<Option<Marginals>> {
    let Some(section) = doc.get("marginals") else { return Ok(None) };
    let log_pu = f32_array_field(section, "log_pu")?;
    let log_pi = f32_array_field(section, "log_pi")?;
    let floor_u = field(section, "floor_u")?
        .as_f32()
        .filter(|v| v.is_finite())
        .ok_or_else(|| bad("marginals floor_u is not a finite number"))?;
    let floor_i = field(section, "floor_i")?
        .as_f32()
        .filter(|v| v.is_finite())
        .ok_or_else(|| bad("marginals floor_i is not a finite number"))?;
    let m = Marginals::from_parts(log_pu, log_pi, floor_u, floor_i);
    let stored_sum = field(section, "checksum")?
        .as_str()
        .ok_or_else(|| bad("marginals checksum is not a string"))?;
    let computed = format!("{:016x}", checksum_marginals(&m));
    if stored_sum != computed {
        return Err(bad(format!(
            "marginals section checksum mismatch: stored {stored_sum}, computed {computed}"
        )));
    }
    Ok(Some(m))
}

// ---------------------------------------------------------------------------
// deserialization
// ---------------------------------------------------------------------------

pub(crate) fn field<'a>(v: &'a Json, key: &str) -> io::Result<&'a Json> {
    v.get(key).ok_or_else(|| bad(format!("checkpoint missing field {key}")))
}

pub(crate) fn usize_field(v: &Json, key: &str) -> io::Result<usize> {
    field(v, key)?
        .as_u64()
        .map(|x| x as usize)
        .ok_or_else(|| bad(format!("checkpoint field {key} is not an integer")))
}

fn extractor_from_json(v: &Json) -> io::Result<ContextExtractor> {
    if let Some(s) = v.as_str() {
        return match s {
            "YoutubeDnn" => Ok(ContextExtractor::YoutubeDnn),
            "Gru" => Ok(ContextExtractor::Gru),
            "Lstm" => Ok(ContextExtractor::Lstm),
            "Transformer" => Ok(ContextExtractor::Transformer),
            other => Err(bad(format!("unknown extractor {other}"))),
        };
    }
    if let Some(inner) = v.get("Cnn") {
        return Ok(ContextExtractor::Cnn { kernel: usize_field(inner, "kernel")? });
    }
    Err(bad("unrecognized extractor encoding"))
}

fn aggregator_from_json(v: &Json) -> io::Result<Aggregator> {
    match v.as_str() {
        Some("Mean") => Ok(Aggregator::Mean),
        Some("Last") => Ok(Aggregator::Last),
        Some("Max") => Ok(Aggregator::Max),
        Some("Attention") => Ok(Aggregator::Attention),
        _ => Err(bad("unrecognized aggregator encoding")),
    }
}

pub(crate) fn tensor_from_json(v: &Json) -> io::Result<Tensor> {
    let shape: Vec<usize> = field(v, "shape")?
        .as_array()
        .ok_or_else(|| bad("tensor shape is not an array"))?
        .iter()
        .map(|d| d.as_u64().map(|x| x as usize).ok_or_else(|| bad("bad tensor dimension")))
        .collect::<io::Result<_>>()?;
    let data: Vec<f32> = field(v, "data")?
        .as_array()
        .ok_or_else(|| bad("tensor data is not an array"))?
        .iter()
        .map(|x| match x {
            Json::Null => Ok(f32::NAN), // serde_json writes non-finite floats as null
            _ => x.as_f32().ok_or_else(|| bad("bad tensor element")),
        })
        .collect::<io::Result<_>>()?;
    let numel: usize = shape.iter().product();
    if shape.is_empty() || shape.contains(&0) || numel != data.len() {
        return Err(bad(format!(
            "tensor shape {shape:?} does not match {} data elements",
            data.len()
        )));
    }
    Ok(Tensor::from_vec(shape.as_slice(), data))
}

/// Reconstructs a model from a parsed checkpoint document: rebuilds the
/// architecture from the stored config (parameter registration order is
/// deterministic), then verifies every stored parameter matches the
/// rebuilt structure by name and shape — and is finite — before swapping
/// it in. Format-v2 documents additionally have their magic string and
/// value checksum verified; v1 documents load without a checksum.
pub fn model_from_json_value(doc: &Json) -> io::Result<TwoTower> {
    let version = field(doc, "format_version")?
        .as_u64()
        .ok_or_else(|| bad("format_version is not an integer"))?;
    let checked = match version {
        1 => false, // legacy: no magic, no checksum
        2 => {
            let magic = field(doc, "magic")?
                .as_str()
                .ok_or_else(|| bad("magic is not a string"))?;
            if magic != MAGIC {
                return Err(bad(format!("not a unimatch checkpoint (magic `{magic}`)")));
            }
            true
        }
        other => return Err(bad(format!("unsupported checkpoint version {other}"))),
    };
    let cfg = field(doc, "config")?;
    let config = ModelConfig {
        num_items: usize_field(cfg, "num_items")?,
        embed_dim: usize_field(cfg, "embed_dim")?,
        max_seq_len: usize_field(cfg, "max_seq_len")?,
        extractor: extractor_from_json(field(cfg, "extractor")?)?,
        aggregator: aggregator_from_json(field(cfg, "aggregator")?)?,
        temperature: field(cfg, "temperature")?
            .as_f32()
            .ok_or_else(|| bad("temperature is not a number"))?,
        normalize: field(cfg, "normalize")?
            .as_bool()
            .ok_or_else(|| bad("normalize is not a boolean"))?,
    };
    if !config.temperature.is_finite() || config.temperature <= 0.0 {
        return Err(bad(format!(
            "checkpoint temperature {} is not a positive finite number",
            config.temperature
        )));
    }
    let stored = field(field(doc, "params")?, "params")?
        .as_array()
        .ok_or_else(|| bad("params is not an array"))?;

    // the RNG only initializes weights we immediately overwrite
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = TwoTower::new(config, &mut rng);
    if model.params.len() != stored.len() {
        return Err(bad(format!(
            "checkpoint has {} parameters, architecture expects {}",
            stored.len(),
            model.params.len()
        )));
    }
    for (fresh, entry) in model.params.ids().zip(stored.iter()) {
        let name = field(entry, "name")?
            .as_str()
            .ok_or_else(|| bad("parameter name is not a string"))?;
        let value = tensor_from_json(field(entry, "value")?)?;
        let expected_name = model.params.name(fresh);
        let expected_shape = model.params.shape(fresh).clone();
        if expected_name != name || &expected_shape != value.shape() {
            return Err(bad(format!(
                "checkpoint parameter {name} {} does not match architecture {expected_name} {expected_shape}",
                value.shape(),
            )));
        }
        if let Some(x) = value.data().iter().find(|x| !x.is_finite()) {
            return Err(bad(format!(
                "checkpoint parameter {name} contains non-finite value {x}"
            )));
        }
        *model.params.get_mut(fresh) = value;
    }
    if checked {
        let stored_sum = field(doc, "checksum")?
            .as_str()
            .ok_or_else(|| bad("checksum is not a string"))?;
        let computed = format!("{:016x}", checksum_model(&model));
        if stored_sum != computed {
            return Err(bad(format!(
                "checkpoint checksum mismatch: stored {stored_sum}, computed {computed} — file is corrupted"
            )));
        }
    }
    // The embedding-section checksum is required in v2 documents (every
    // v2 save writes it) and verified when a legacy v1 document happens
    // to carry one; v1 documents without it still load — their values
    // are covered by the whole-model checksum on the v2 path.
    let embedding_sum = if checked {
        Some(field(doc, "embedding_checksum")?)
    } else {
        doc.get("embedding_checksum")
    };
    if let Some(stored) = embedding_sum {
        let stored_sum =
            stored.as_str().ok_or_else(|| bad("embedding_checksum is not a string"))?;
        let (_, emb) = model
            .params
            .iter()
            .find(|(_, p)| p.name == EMBEDDING_PARAM)
            .ok_or_else(|| bad("checkpoint architecture has no item_embedding"))?;
        let computed = format!(
            "{:016x}",
            checksum_embedding_section(
                emb.value.shape().dims(),
                emb.value.data().iter().map(|x| x.to_bits()),
            )
        );
        if stored_sum != computed {
            return Err(bad(format!(
                "embedding section checksum mismatch: stored {stored_sum}, computed {computed}"
            )));
        }
    }
    Ok(model)
}

/// Decodes ONLY the embedding section of a checkpoint document into an
/// aligned [`EmbeddingStore`] — no `ParamSet`, no architecture rebuild,
/// no extractor/aggregator parameters touched. This is the zero-copy*
/// serving path: the item table is read once from JSON straight into the
/// store's arena, normalized in place exactly as `TwoTower::infer_items`
/// would, and handed to the retrieval engine.
///
/// (*zero extra copies: the floats go parse → arena, instead of
/// parse → `Tensor` → `ParamSet` → `infer_items` allocation → index.)
///
/// Validated like a model load: version/magic checked, the section's
/// name and shape must match the stored config, every value must be
/// finite, and the `embedding_checksum` (present in all current saves)
/// is verified over the raw bit patterns before normalization.
pub fn item_store_from_json_value(doc: &Json) -> io::Result<EmbeddingStore> {
    let version = field(doc, "format_version")?
        .as_u64()
        .ok_or_else(|| bad("format_version is not an integer"))?;
    let checked = match version {
        1 => false,
        2 => {
            let magic =
                field(doc, "magic")?.as_str().ok_or_else(|| bad("magic is not a string"))?;
            if magic != MAGIC {
                return Err(bad(format!("not a unimatch checkpoint (magic `{magic}`)")));
            }
            true
        }
        other => return Err(bad(format!("unsupported checkpoint version {other}"))),
    };
    let cfg = field(doc, "config")?;
    let num_items = usize_field(cfg, "num_items")?;
    let embed_dim = usize_field(cfg, "embed_dim")?;
    let normalize = field(cfg, "normalize")?
        .as_bool()
        .ok_or_else(|| bad("normalize is not a boolean"))?;
    if num_items == 0 || embed_dim == 0 {
        return Err(bad(format!("degenerate embedding table {num_items}×{embed_dim}")));
    }
    let stored = field(field(doc, "params")?, "params")?
        .as_array()
        .ok_or_else(|| bad("params is not an array"))?;
    let entry = stored.first().ok_or_else(|| bad("checkpoint has no parameters"))?;
    let name =
        field(entry, "name")?.as_str().ok_or_else(|| bad("parameter name is not a string"))?;
    if name != EMBEDDING_PARAM {
        return Err(bad(format!(
            "first checkpoint parameter is {name}, expected {EMBEDDING_PARAM}"
        )));
    }
    let value = field(entry, "value")?;
    let shape: Vec<usize> = field(value, "shape")?
        .as_array()
        .ok_or_else(|| bad("embedding shape is not an array"))?
        .iter()
        .map(|d| d.as_u64().map(|x| x as usize).ok_or_else(|| bad("bad embedding dimension")))
        .collect::<io::Result<_>>()?;
    if shape != [num_items, embed_dim] {
        return Err(bad(format!(
            "embedding shape {shape:?} does not match config {num_items}×{embed_dim}"
        )));
    }
    let data = field(value, "data")?
        .as_array()
        .ok_or_else(|| bad("embedding data is not an array"))?;
    if data.len() != num_items * embed_dim {
        return Err(bad(format!(
            "embedding section has {} elements, expected {}",
            data.len(),
            num_items * embed_dim
        )));
    }

    let mut store = EmbeddingStore::zeroed(num_items, embed_dim);
    {
        let arena = store.data_mut();
        for (slot, x) in arena.iter_mut().zip(data.iter()) {
            let v = match x {
                Json::Null => f32::NAN, // serde_json writes non-finite floats as null
                _ => x.as_f32().ok_or_else(|| bad("bad embedding element"))?,
            };
            if !v.is_finite() {
                return Err(bad(format!(
                    "embedding section contains non-finite value {v}"
                )));
            }
            *slot = v;
        }
    }
    let embedding_sum = if checked {
        Some(field(doc, "embedding_checksum")?)
    } else {
        doc.get("embedding_checksum")
    };
    if let Some(stored_sum) = embedding_sum {
        let stored_sum =
            stored_sum.as_str().ok_or_else(|| bad("embedding_checksum is not a string"))?;
        let computed = format!(
            "{:016x}",
            checksum_embedding_section(&shape, store.as_slice().iter().map(|x| x.to_bits()))
        );
        if stored_sum != computed {
            return Err(bad(format!(
                "embedding section checksum mismatch: stored {stored_sum}, computed {computed}"
            )));
        }
    }
    if normalize {
        // Bit-identical to TwoTower::infer_items: sequential sum of
        // squares, sqrt, .max(NORM_EPS), then divide.
        for r in 0..num_items {
            let row = store.row_mut(r);
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(NORM_EPS);
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
    }
    Ok(store)
}

/// Reconstructs a model from JSON bytes. See [`model_from_json_value`].
pub fn model_from_json(bytes: &[u8]) -> io::Result<TwoTower> {
    let doc = Json::parse(bytes).map_err(|e| bad(e.to_string()))?;
    model_from_json_value(&doc)
}

// ---------------------------------------------------------------------------
// files
// ---------------------------------------------------------------------------

/// Saves a model checkpoint to a file, atomically.
///
/// The bytes are written to a `.tmp` sibling in the same directory and
/// `rename`d into place, so concurrent readers (and a serving `/reload`
/// racing a trainer) always observe either the previous complete
/// checkpoint or the new complete one — never a torn prefix.
pub fn save_model(model: &TwoTower, path: impl AsRef<Path>) -> io::Result<()> {
    save_model_with_marginals(model, None, path)
}

/// [`save_model`], optionally embedding the training marginals as the
/// checkpoint's `marginals` section (see [`marginals_to_json_value`]).
/// `None` writes exactly the document [`save_model`] always wrote, so
/// old readers are unaffected.
pub fn save_model_with_marginals(
    model: &TwoTower,
    marginals: Option<&Marginals>,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    if let Some(e) = SAVE_FAULT.io_error() {
        return Err(e);
    }
    let mut doc = model_to_json_value(model);
    if let Some(m) = marginals {
        let Json::Obj(entries) = &mut doc else { unreachable!("model doc is an object") };
        entries.push(("marginals".to_string(), marginals_to_json_value(m)));
    }
    write_atomic(path.as_ref(), &doc.to_bytes())
}

/// Writes `bytes` to a `.tmp` sibling and `rename`s it into place —
/// readers observe either the previous complete file or the new one.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// Loads a model checkpoint from a file.
pub fn load_model(path: impl AsRef<Path>) -> io::Result<TwoTower> {
    if let Some(e) = LOAD_FAULT.io_error() {
        return Err(e);
    }
    let mut bytes = std::fs::read(path)?;
    LOAD_CORRUPT_FAULT.corrupt(&mut bytes);
    model_from_json(&bytes)
}

/// Loads ONLY the embedding store from a checkpoint file — the serving
/// fast path when no model (and no `ParamSet`) is needed. Same fault
/// seams as [`load_model`].
pub fn load_item_store(path: impl AsRef<Path>) -> io::Result<EmbeddingStore> {
    if let Some(e) = LOAD_FAULT.io_error() {
        return Err(e);
    }
    let mut bytes = std::fs::read(path)?;
    LOAD_CORRUPT_FAULT.corrupt(&mut bytes);
    let doc = Json::parse(&bytes).map_err(|e| bad(e.to_string()))?;
    item_store_from_json_value(&doc)
}

/// Loads a checkpoint's model *and* its embedding store from one read
/// and one parse — what a serving reload wants: the store feeds the
/// retrieval indexes directly, the model handles user-tower inference.
pub fn load_model_and_store(
    path: impl AsRef<Path>,
) -> io::Result<(TwoTower, Arc<EmbeddingStore>)> {
    if let Some(e) = LOAD_FAULT.io_error() {
        return Err(e);
    }
    let mut bytes = std::fs::read(path)?;
    LOAD_CORRUPT_FAULT.corrupt(&mut bytes);
    let doc = Json::parse(&bytes).map_err(|e| bad(e.to_string()))?;
    let model = model_from_json_value(&doc)?;
    let store = item_store_from_json_value(&doc)?;
    Ok((model, Arc::new(store)))
}

/// [`load_model_and_store`] plus the optional marginals section — the
/// full serving reload: model for user-tower inference, store for the
/// retrieval indexes, marginals for the serve-time debias stage (when
/// the checkpoint carries them).
pub fn load_checkpoint(
    path: impl AsRef<Path>,
) -> io::Result<(TwoTower, Arc<EmbeddingStore>, Option<Marginals>)> {
    if let Some(e) = LOAD_FAULT.io_error() {
        return Err(e);
    }
    let mut bytes = std::fs::read(path)?;
    LOAD_CORRUPT_FAULT.corrupt(&mut bytes);
    let doc = Json::parse(&bytes).map_err(|e| bad(e.to_string()))?;
    let model = model_from_json_value(&doc)?;
    let store = item_store_from_json_value(&doc)?;
    let marginals = marginals_from_json_value(&doc)?;
    Ok((model, Arc::new(store), marginals))
}

/// [`load_checkpoint`] with the same retry policy as
/// [`load_model_with_retry`].
pub fn load_checkpoint_with_retry(
    path: impl AsRef<Path>,
    policy: &RetryPolicy,
) -> io::Result<(TwoTower, Arc<EmbeddingStore>, Option<Marginals>)> {
    retry_load(policy, || load_checkpoint(path.as_ref()))
}

// ---------------------------------------------------------------------------
// quantized sidecar tables
// ---------------------------------------------------------------------------

/// The sidecar table path for a checkpoint and row format:
/// `<checkpoint>.<format>.table` (e.g. `model.json.i8.table`).
pub fn table_path(checkpoint: impl AsRef<Path>, format: RowFormat) -> PathBuf {
    let mut os = checkpoint.as_ref().as_os_str().to_owned();
    os.push(format!(".{}.table", format.name()));
    PathBuf::from(os)
}

/// The checkpoint's `embedding_checksum` field as the u64 the sidecar's
/// `source_checksum` must match.
fn embedding_checksum_from_doc(doc: &Json) -> io::Result<u64> {
    let s = field(doc, "embedding_checksum")?
        .as_str()
        .ok_or_else(|| bad("embedding_checksum is not a string"))?;
    u64::from_str_radix(s, 16).map_err(|_| bad("embedding_checksum is not a hex u64"))
}

/// [`save_model_with_marginals`] plus the quantized-table sidecar: a
/// quantized `store` is serialized to [`table_path`]`(path, format)`
/// and the checkpoint document gains a `quant_tables` section recording
/// the sidecar's format, file name, and whole-file checksum — all bound
/// to the embedding section through `embedding_checksum`. An f32 store
/// writes exactly the document [`save_model_with_marginals`] writes, so
/// old readers are unaffected; the document depends only on the store's
/// *format*, never on how a load will back the arena, which is what
/// keeps mmap-on and mmap-off checkpoints byte-identical.
pub fn save_checkpoint_with_table(
    model: &TwoTower,
    marginals: Option<&Marginals>,
    store: &EmbeddingStore,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    if store.format() == RowFormat::F32 {
        return save_model_with_marginals(model, marginals, path);
    }
    if let Some(e) = SAVE_FAULT.io_error() {
        return Err(e);
    }
    let path = path.as_ref();
    let sidecar = table_path(path, store.format());
    let header = write_table(store, embedding_checksum_of(model), &sidecar)?;
    let mut doc = model_to_json_value(model);
    let Json::Obj(entries) = &mut doc else { unreachable!("model doc is an object") };
    if let Some(m) = marginals {
        entries.push(("marginals".to_string(), marginals_to_json_value(m)));
    }
    let file_name =
        sidecar.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
    entries.push((
        "quant_tables".to_string(),
        Json::obj(vec![(
            store.format().name(),
            Json::obj(vec![
                ("file", Json::str(file_name)),
                ("checksum", Json::str(format!("{:016x}", header.table_checksum))),
            ]),
        )]),
    ));
    write_atomic(path, &doc.to_bytes())
}

/// [`load_checkpoint`] in a serving store format: the model, the item
/// store in `format` (mmap-backed when `mmap` is set), and the optional
/// marginals.
///
/// When the checkpoint's `quant_tables` section advertises a sidecar
/// for `format`, the sidecar must open and validate end to end — magic,
/// whole-file checksum, `source_checksum` equal to the checkpoint's
/// `embedding_checksum`, and the section's recorded table checksum — or
/// the load fails (so a serving `/reload` keeps the previous version).
/// Without a section, the store is derived from the checkpoint's f32
/// embedding section (bit-identical to what a fit-time sidecar would
/// hold, because quantization is deterministic) and, when `mmap` is
/// set, persisted as a sidecar first so the arena can be memory-mapped.
pub fn load_checkpoint_with_format(
    path: impl AsRef<Path>,
    format: RowFormat,
    mmap: bool,
) -> io::Result<(TwoTower, Arc<EmbeddingStore>, Option<Marginals>)> {
    if let Some(e) = LOAD_FAULT.io_error() {
        return Err(e);
    }
    let mut bytes = std::fs::read(path.as_ref())?;
    LOAD_CORRUPT_FAULT.corrupt(&mut bytes);
    let doc = Json::parse(&bytes).map_err(|e| bad(e.to_string()))?;
    let model = model_from_json_value(&doc)?;
    let marginals = marginals_from_json_value(&doc)?;
    let store = item_store_with_format(&doc, path.as_ref(), format, mmap)?;
    Ok((model, Arc::new(store), marginals))
}

/// [`load_checkpoint_with_format`] with the same retry policy as
/// [`load_model_with_retry`].
pub fn load_checkpoint_with_format_and_retry(
    path: impl AsRef<Path>,
    format: RowFormat,
    mmap: bool,
    policy: &RetryPolicy,
) -> io::Result<(TwoTower, Arc<EmbeddingStore>, Option<Marginals>)> {
    retry_load(policy, || load_checkpoint_with_format(path.as_ref(), format, mmap))
}

/// Resolves a parsed checkpoint document to an item store in `format`,
/// preferring an advertised sidecar table and falling back to the
/// embedding section. See [`load_checkpoint_with_format`].
fn item_store_with_format(
    doc: &Json,
    path: &Path,
    format: RowFormat,
    mmap: bool,
) -> io::Result<EmbeddingStore> {
    if format == RowFormat::F32 && !mmap {
        // the historical in-memory load, untouched
        return item_store_from_json_value(doc);
    }
    let source = embedding_checksum_from_doc(doc)?;
    let sidecar = table_path(path, format);
    if let Some(section) = doc.get("quant_tables").and_then(|t| t.get(format.name())) {
        let recorded = field(section, "checksum")?
            .as_str()
            .ok_or_else(|| bad("quant_tables checksum is not a string"))?;
        let (store, header) =
            open_table_with(&sidecar, mmap, |b| {
                LOAD_CORRUPT_FAULT.corrupt(b);
            })?;
        if header.format != format {
            return Err(bad(format!(
                "sidecar {} holds a {} table, expected {}",
                sidecar.display(),
                header.format.name(),
                format.name()
            )));
        }
        if header.source_checksum != source {
            return Err(bad(format!(
                "sidecar {} derives from a different checkpoint (source checksum mismatch)",
                sidecar.display()
            )));
        }
        let computed = format!("{:016x}", header.table_checksum);
        if computed != recorded {
            return Err(bad(format!(
                "sidecar {} checksum mismatch: checkpoint records {recorded}, file holds {computed}",
                sidecar.display()
            )));
        }
        return Ok(store);
    }
    // No advertised sidecar: derive the store from the embedding section.
    let store = item_store_from_json_value(doc)?;
    let store = if format == RowFormat::F32 { store } else { store.quantize(format) };
    if !mmap {
        return Ok(store);
    }
    // Memory-mapping needs a file image; reuse an existing sidecar only
    // when it provably derives from this checkpoint, otherwise (re)write
    // one — the byte image is deterministic, so concurrent loaders that
    // race the rename still agree on every byte.
    let reuse = matches!(
        read_table_header(&sidecar),
        Ok(h) if h.source_checksum == source && h.format == format
    );
    if reuse {
        if let Ok((mapped, _)) = open_table_with(&sidecar, true, |_| {}) {
            return Ok(mapped);
        }
    }
    write_table(&store, source, &sidecar)?;
    let (mapped, _) = open_table_with(&sidecar, true, |_| {})?;
    Ok(mapped)
}

// ---------------------------------------------------------------------------
// retry
// ---------------------------------------------------------------------------

/// Bounded retry-with-backoff for transient I/O.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (≥ 1); the first try counts.
    pub attempts: u32,
    /// Sleep before the second attempt; doubles each retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { attempts: 3, backoff: Duration::from_millis(10) }
    }
}

/// Whether an I/O error is worth retrying: interruptions and timeouts
/// are; corrupt data, missing files, and permission problems are not —
/// retrying those only delays the real error.
pub fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// [`load_model`] with bounded retry-with-backoff for transient errors.
/// Non-transient errors (corruption, missing file) return immediately.
pub fn load_model_with_retry(path: impl AsRef<Path>, policy: &RetryPolicy) -> io::Result<TwoTower> {
    retry_load(policy, || load_model(path.as_ref()))
}

/// [`load_model_and_store`] with the same retry policy as
/// [`load_model_with_retry`].
pub fn load_model_and_store_with_retry(
    path: impl AsRef<Path>,
    policy: &RetryPolicy,
) -> io::Result<(TwoTower, Arc<EmbeddingStore>)> {
    retry_load(policy, || load_model_and_store(path.as_ref()))
}

fn retry_load<T>(policy: &RetryPolicy, mut load: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut backoff = policy.backoff;
    let mut attempt = 0;
    loop {
        attempt += 1;
        match load() {
            Ok(loaded) => return Ok(loaded),
            Err(e) if attempt < policy.attempts.max(1) && is_transient(e.kind()) => {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};
    use unimatch_ann::StoreBacking;
    use unimatch_data::SeqBatch;
    use unimatch_faults::{FaultKind, FaultPlan, FaultRule};

    fn model(extractor: ContextExtractor) -> TwoTower {
        let mut rng = StdRng::seed_from_u64(77);
        TwoTower::new(
            ModelConfig {
                num_items: 20,
                embed_dim: 8,
                max_seq_len: 6,
                extractor,
                aggregator: Aggregator::Attention,
                temperature: 0.2,
                normalize: true,
            },
            &mut rng,
        )
    }

    /// A per-test, per-process temp path: parallel test runs (and repeated
    /// runs of the same binary) never collide on a fixed file name.
    fn unique_tmp(name: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "unimatch_persist_{}_{}_{}",
            name,
            std::process::id(),
            n
        ));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    #[test]
    fn round_trip_preserves_inference() {
        for extractor in ContextExtractor::ALL {
            let m = model(extractor);
            let restored = model_from_json(&model_to_json(&m)).expect("round trip");
            let h = vec![1u32, 5, 9];
            let batch = SeqBatch::from_histories(&[&h], 6);
            assert_eq!(
                m.infer_users(&batch).data(),
                restored.infer_users(&batch).data(),
                "{}",
                extractor.label()
            );
            assert_eq!(m.infer_items().data(), restored.infer_items().data());
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let m = model(ContextExtractor::Transformer);
        let restored = model_from_json(&model_to_json(&m)).expect("round trip");
        for (id, p) in m.params.iter() {
            assert_eq!(p.value.data(), restored.params.get(id).data(), "{}", p.name);
        }
    }

    #[test]
    fn corrupted_checkpoint_rejected() {
        assert!(model_from_json(b"not json").is_err());
        // valid JSON, wrong schema
        assert!(model_from_json(b"{\"format_version\":1}").is_err());
        assert!(model_from_json(b"{\"format_version\":2}").is_err());
        // truncated document — what a torn write would have produced
        let whole = model_to_json(&model(ContextExtractor::YoutubeDnn));
        assert!(model_from_json(&whole[..whole.len() / 2]).is_err());
    }

    #[test]
    fn v2_document_carries_magic_and_checksum() {
        let bytes = model_to_json(&model(ContextExtractor::YoutubeDnn));
        let doc = Json::parse(&bytes).expect("parse");
        assert_eq!(doc.get("magic").and_then(|m| m.as_str()), Some(MAGIC));
        assert_eq!(doc.get("format_version").and_then(|v| v.as_u64()), Some(2));
        let sum = doc.get("checksum").and_then(|c| c.as_str()).expect("checksum field");
        assert_eq!(sum.len(), 16, "u64 hex: {sum}");
        assert!(model_from_json(b"{\"magic\":\"other\",\"format_version\":2}").is_err());
    }

    #[test]
    fn legacy_v1_document_still_loads() {
        let m = model(ContextExtractor::Gru);
        // strip the v2-only fields and downgrade the version marker —
        // exactly what a pre-existing on-disk checkpoint looks like
        let doc = Json::parse(&model_to_json(&m)).expect("parse");
        let Json::Obj(entries) = doc else { panic!("document is an object") };
        let v1 = Json::Obj(
            entries
                .into_iter()
                .filter(|(k, _)| k != "magic" && k != "checksum")
                .map(|(k, v)| if k == "format_version" { (k, Json::int(1)) } else { (k, v) })
                .collect(),
        );
        let restored = model_from_json_value(&v1).expect("v1 loads");
        for (id, p) in m.params.iter() {
            assert_eq!(p.value.data(), restored.params.get(id).data(), "{}", p.name);
        }
    }

    #[test]
    fn mismatched_architecture_rejected() {
        // serialize a GRU model, then tamper with the config to claim LSTM:
        // the parameter names will not match and loading must fail
        let m = model(ContextExtractor::Gru);
        let json = String::from_utf8(model_to_json(&m)).expect("utf8");
        let tampered = json.replace("\"Gru\"", "\"Lstm\"");
        assert!(model_from_json(tampered.as_bytes()).is_err());
    }

    #[test]
    fn non_finite_params_rejected_by_name() {
        let mut m = model(ContextExtractor::YoutubeDnn);
        let first = m.params.ids().next().expect("model has parameters");
        let poisoned_name = m.params.name(first).to_string();
        m.params.get_mut(first).data_mut()[0] = f32::NAN;
        let e = model_from_json(&model_to_json(&m)).expect_err("NaN must be rejected");
        let msg = e.to_string();
        assert!(msg.contains("non-finite"), "{msg}");
        assert!(msg.contains(&poisoned_name), "{msg}");
    }

    #[test]
    fn every_single_bit_flip_is_detected_or_harmless() {
        // the regression the checksum exists for: corrupt a real saved
        // file one bit at a time and require that the load either fails
        // with a descriptive error or (if the flip landed somewhere
        // semantically dead) yields a value-identical model
        let m = model(ContextExtractor::YoutubeDnn);
        let whole = model_to_json(&m);
        let mut undetected = 0usize;
        for pos in 0..whole.len() {
            let mut bytes = whole.clone();
            bytes[pos] ^= 1 << (pos % 8);
            match model_from_json(&bytes) {
                Err(e) => assert!(!e.to_string().is_empty()),
                Ok(restored) => {
                    undetected += 1;
                    for (id, p) in m.params.iter() {
                        assert_eq!(
                            p.value.data(),
                            restored.params.get(id).data(),
                            "flip at byte {pos} silently changed parameter {}",
                            p.name
                        );
                    }
                }
            }
        }
        // almost every flip must be *detected*; the odd harmless one
        // (e.g. in a digit of the already-validated format_version
        // field) is tolerated above only if the values are untouched
        assert!(undetected < whole.len() / 100, "{undetected} undetected flips");
    }

    #[test]
    fn truncations_are_rejected() {
        let whole = model_to_json(&model(ContextExtractor::YoutubeDnn));
        for len in (0..whole.len()).step_by(211).chain(whole.len() - 3..whole.len()) {
            assert!(model_from_json(&whole[..len]).is_err(), "truncation at {len} accepted");
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = unique_tmp("file_round_trip");
        let path = dir.join("model.json");
        let m = model(ContextExtractor::YoutubeDnn);
        save_model(&m, &path).expect("save");
        let restored = load_model(&path).expect("load");
        assert_eq!(m.params.num_scalars(), restored.params.num_scalars());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_leaves_no_tmp_sibling() {
        let dir = unique_tmp("no_tmp");
        let path = dir.join("model.json");
        let m = model(ContextExtractor::YoutubeDnn);
        save_model(&m, &path).expect("save");
        assert!(path.exists());
        assert!(!dir.join("model.json.tmp").exists());
        // overwriting an existing checkpoint is also atomic
        save_model(&m, &path).expect("re-save");
        assert!(!dir.join("model.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_recovers_from_transient_faults() {
        let _guard = crate::fault_test_lock();
        let dir = unique_tmp("retry");
        let path = dir.join("model.json");
        save_model(&model(ContextExtractor::YoutubeDnn), &path).expect("save");

        // two injected transient failures, then the real read succeeds
        unimatch_faults::set_plan(FaultPlan {
            seed: 1,
            rules: vec![FaultRule::new("persist.load", FaultKind::IoError).with_max_fires(2)],
        });
        let policy = RetryPolicy { attempts: 3, backoff: Duration::from_millis(1) };
        assert!(load_model_with_retry(&path, &policy).is_ok());

        // with the budget refreshed but only 2 attempts, the error surfaces
        unimatch_faults::set_plan(FaultPlan {
            seed: 1,
            rules: vec![FaultRule::new("persist.load", FaultKind::IoError).with_max_fires(2)],
        });
        let tight = RetryPolicy { attempts: 2, backoff: Duration::from_millis(1) };
        let e = load_model_with_retry(&path, &tight).expect_err("budget exhausted");
        assert_eq!(e.kind(), io::ErrorKind::Interrupted);
        unimatch_faults::clear();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_bit_flip_on_read_is_caught() {
        let _guard = crate::fault_test_lock();
        let dir = unique_tmp("bitflip");
        let path = dir.join("model.json");
        save_model(&model(ContextExtractor::YoutubeDnn), &path).expect("save");
        unimatch_faults::set_plan(FaultPlan {
            seed: 2,
            rules: vec![
                FaultRule::new("persist.load.corrupt", FaultKind::BitFlip).with_max_fires(1),
            ],
        });
        // a single flipped bit somewhere in the document must not load
        // as a silently different model (checksum or parse catches it)
        match load_model(&path) {
            Err(_) => {}
            Ok(restored) => {
                let original = load_model(&path).expect("clean load after budget spent");
                for (id, p) in original.params.iter() {
                    assert_eq!(p.value.data(), restored.params.get(id).data(), "{}", p.name);
                }
            }
        }
        unimatch_faults::clear();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn item_store_matches_infer_items_bit_for_bit() {
        for extractor in ContextExtractor::ALL {
            let m = model(extractor);
            let doc = Json::parse(&model_to_json(&m)).expect("parse");
            let store = item_store_from_json_value(&doc).expect("store loads");
            let expected = m.infer_items();
            assert_eq!(store.rows(), 20);
            assert_eq!(store.dim(), 8);
            assert_eq!(store.as_slice().as_ptr() as usize % unimatch_ann::STORE_ALIGN, 0);
            for (got, want) in store.as_slice().iter().zip(expected.data()) {
                assert_eq!(got.to_bits(), want.to_bits(), "{}", extractor.label());
            }
        }
    }

    #[test]
    fn unnormalized_store_is_the_raw_table() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = TwoTower::new(
            ModelConfig {
                num_items: 12,
                embed_dim: 4,
                max_seq_len: 5,
                extractor: ContextExtractor::YoutubeDnn,
                aggregator: Aggregator::Mean,
                temperature: 0.2,
                normalize: false,
            },
            &mut rng,
        );
        let doc = Json::parse(&model_to_json(&m)).expect("parse");
        let store = item_store_from_json_value(&doc).expect("store loads");
        let expected = m.infer_items();
        for (got, want) in store.as_slice().iter().zip(expected.data()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn item_store_loads_from_file_without_a_model() {
        let dir = unique_tmp("store_only");
        let path = dir.join("model.json");
        let m = model(ContextExtractor::YoutubeDnn);
        save_model(&m, &path).expect("save");
        let store = load_item_store(&path).expect("store-only load");
        let expected = m.infer_items();
        assert_eq!(store.as_slice().len(), expected.data().len());
        for (got, want) in store.as_slice().iter().zip(expected.data()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_model_and_store_is_one_consistent_pair() {
        let dir = unique_tmp("pair");
        let path = dir.join("model.json");
        let m = model(ContextExtractor::Gru);
        save_model(&m, &path).expect("save");
        let (restored, store) = load_model_and_store(&path).expect("pair load");
        let expected = restored.infer_items();
        for (got, want) in store.as_slice().iter().zip(expected.data()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_embedding_checksum_is_rejected() {
        let m = model(ContextExtractor::YoutubeDnn);
        let doc = Json::parse(&model_to_json(&m)).expect("parse");
        let stored = doc
            .get("embedding_checksum")
            .and_then(|c| c.as_str())
            .expect("v2 documents carry an embedding checksum")
            .to_string();
        let flipped_digit = if stored.starts_with('0') { "1" } else { "0" };
        let tampered_sum = format!("{flipped_digit}{}", &stored[1..]);
        let json = String::from_utf8(model_to_json(&m)).expect("utf8");
        let tampered = json.replace(&stored, &tampered_sum);
        assert_ne!(json, tampered);
        // both loaders must refuse the section
        assert!(model_from_json(tampered.as_bytes()).is_err());
        let doc = Json::parse(tampered.as_bytes()).expect("parse");
        assert!(item_store_from_json_value(&doc).is_err());
    }

    fn sample_marginals() -> Marginals {
        use unimatch_data::windowing::Sample;
        let samples: Vec<Sample> = (0..40)
            .map(|i| Sample { user: i % 7, history: vec![], target: i % 11, day: i })
            .collect();
        Marginals::from_samples(&samples, 7, 11)
    }

    #[test]
    fn marginals_section_round_trips_bit_for_bit() {
        let dir = unique_tmp("marginals");
        let path = dir.join("model.json");
        let m = model(ContextExtractor::YoutubeDnn);
        let marg = sample_marginals();
        save_model_with_marginals(&m, Some(&marg), &path).expect("save");

        let (restored_model, _, loaded) = load_checkpoint(&path).expect("load");
        let loaded = loaded.expect("section present");
        for (a, b) in marg.log_pi_all().iter().zip(loaded.log_pi_all()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in marg.log_pu_all().iter().zip(loaded.log_pu_all()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(marg.floor_i().to_bits(), loaded.floor_i().to_bits());
        // the model itself is untouched by the extra section
        assert_eq!(m.params.num_scalars(), restored_model.params.num_scalars());
        // and the plain loaders still accept the document
        assert!(load_model(&path).is_ok());
        assert!(load_item_store(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_without_marginals_loads_as_none() {
        let dir = unique_tmp("no_marginals");
        let path = dir.join("model.json");
        save_model(&model(ContextExtractor::YoutubeDnn), &path).expect("save");
        let (_, _, loaded) = load_checkpoint(&path).expect("load");
        assert!(loaded.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_marginals_section_is_rejected() {
        let m = model(ContextExtractor::YoutubeDnn);
        let marg = sample_marginals();
        let mut doc = model_to_json_value(&m);
        let Json::Obj(entries) = &mut doc else { panic!("doc is an object") };
        entries.push(("marginals".to_string(), marginals_to_json_value(&marg)));
        let clean = doc.to_string();
        assert!(
            marginals_from_json_value(&Json::parse(clean.as_bytes()).unwrap())
                .expect("clean section loads")
                .is_some()
        );
        // flip one stored checksum digit
        let sum = format!("{:016x}", checksum_marginals(&marg));
        let flipped = if let Some(rest) = sum.strip_prefix('0') {
            format!("1{rest}")
        } else {
            format!("0{}", &sum[1..])
        };
        let tampered = clean.replace(&sum, &flipped);
        assert_ne!(clean, tampered);
        let doc = Json::parse(tampered.as_bytes()).expect("parse");
        let e = marginals_from_json_value(&doc).expect_err("tampered section rejected");
        assert!(e.to_string().contains("checksum"), "{e}");
        // non-finite values are rejected even with a matching shape
        let poisoned = clean.replace("\"floor_u\":", "\"floor_u\":null,\"floor_u_\":");
        if let Ok(doc) = Json::parse(poisoned.as_bytes()) {
            assert!(marginals_from_json_value(&doc).is_err());
        }
    }

    #[test]
    fn non_transient_errors_do_not_retry() {
        let missing = std::env::temp_dir().join("unimatch_persist_definitely_missing.json");
        let policy = RetryPolicy { attempts: 5, backoff: Duration::from_secs(60) };
        // would sleep for minutes if NotFound were (wrongly) retried
        let start = std::time::Instant::now();
        assert!(load_model_with_retry(&missing, &policy).is_err());
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    // ---- quantized sidecar tables ------------------------------------------

    /// Like [`model`], but with a caller-chosen seed — tests that need two
    /// models with *different* item embeddings (the item table is drawn
    /// before any extractor weights, so same-seed models share it).
    fn model_seeded(seed: u64) -> TwoTower {
        let mut rng = StdRng::seed_from_u64(seed);
        TwoTower::new(
            ModelConfig {
                num_items: 20,
                embed_dim: 8,
                max_seq_len: 6,
                extractor: ContextExtractor::YoutubeDnn,
                aggregator: Aggregator::Attention,
                temperature: 0.2,
                normalize: true,
            },
            &mut rng,
        )
    }

    fn f32_store_of(m: &TwoTower) -> EmbeddingStore {
        let doc = Json::parse(&model_to_json(m)).expect("parse");
        item_store_from_json_value(&doc).expect("embedding section decodes")
    }

    /// Bitwise equality of two stores through their public decode surface:
    /// same format + params + decoded bits ⇒ same code bytes.
    fn assert_store_bits_equal(a: &EmbeddingStore, b: &EmbeddingStore) {
        assert_eq!(a.format(), b.format());
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.dim(), b.dim());
        for r in 0..a.rows() {
            if a.format() == RowFormat::I8 {
                assert_eq!(a.row_params(r), b.row_params(r), "row {r} params");
            }
            let (ra, rb) = (a.decode_row(r), b.decode_row(r));
            for (x, y) in ra.iter().zip(rb.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn quantized_checkpoint_round_trips_bit_for_bit() {
        let m = model(ContextExtractor::YoutubeDnn);
        let f32_store = f32_store_of(&m);
        for format in [RowFormat::F16, RowFormat::I8] {
            let quantized = f32_store.quantize(format);
            let dir = unique_tmp("quant_rt");
            let path = dir.join("model.json");
            save_checkpoint_with_table(&m, None, &quantized, &path).expect("save");
            assert!(table_path(&path, format).exists(), "sidecar written");
            for mmap in [false, true] {
                let (restored, store, marginals) =
                    load_checkpoint_with_format(&path, format, mmap).expect("load");
                assert!(marginals.is_none());
                assert_eq!(
                    embedding_checksum_of(&restored),
                    embedding_checksum_of(&m),
                    "same embedding table"
                );
                let want = if mmap { StoreBacking::Mmap } else { StoreBacking::Owned };
                assert_eq!(store.backing(), want);
                assert_store_bits_equal(&store, &quantized);
            }
            // the embedding section still serves other formats, f32 included
            let (_, as_f32, _) =
                load_checkpoint_with_format(&path, RowFormat::F32, false).expect("f32 load");
            assert_store_bits_equal(&as_f32, &f32_store);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn quantized_checkpoint_keeps_marginals_section() {
        let m = model(ContextExtractor::Gru);
        let marg = sample_marginals();
        let quantized = f32_store_of(&m).quantize(RowFormat::I8);
        let dir = unique_tmp("quant_marg");
        let path = dir.join("model.json");
        save_checkpoint_with_table(&m, Some(&marg), &quantized, &path).expect("save");
        let (_, _, restored) =
            load_checkpoint_with_format(&path, RowFormat::I8, false).expect("load");
        let restored = restored.expect("marginals round-trip");
        for (a, b) in restored.log_pi_all().iter().zip(marg.log_pi_all()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(restored.floor_i().to_bits(), marg.floor_i().to_bits());
    }

    #[test]
    fn unadvertised_format_is_derived_identically_from_the_embedding_section() {
        let m = model(ContextExtractor::Transformer);
        let f32_store = f32_store_of(&m);
        let dir = unique_tmp("quant_derive");
        let path = dir.join("model.json");
        // a plain f32 checkpoint advertises no tables at all
        save_model(&m, &path).expect("save");
        for format in [RowFormat::F16, RowFormat::I8] {
            let expected = f32_store.quantize(format);
            let (_, owned, _) =
                load_checkpoint_with_format(&path, format, false).expect("derive owned");
            assert_eq!(owned.backing(), StoreBacking::Owned);
            assert_store_bits_equal(&owned, &expected);
            assert!(!table_path(&path, format).exists(), "in-memory derivation writes nothing");
            // mmap needs real bytes on disk: the loader materializes the
            // sidecar once, then maps it — and reuses it on the next load
            let (_, mapped, _) =
                load_checkpoint_with_format(&path, format, true).expect("derive mmap");
            assert_eq!(mapped.backing(), StoreBacking::Mmap);
            assert_store_bits_equal(&mapped, &expected);
            let sidecar = table_path(&path, format);
            assert!(sidecar.exists());
            let bytes_first = std::fs::read(&sidecar).expect("sidecar bytes");
            let (_, remapped, _) =
                load_checkpoint_with_format(&path, format, true).expect("reuse mmap");
            assert_store_bits_equal(&remapped, &expected);
            assert_eq!(
                bytes_first,
                std::fs::read(&sidecar).expect("sidecar bytes"),
                "reuse must not rewrite the sidecar"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_or_truncated_sidecar_is_rejected() {
        let m = model(ContextExtractor::YoutubeDnn);
        let quantized = f32_store_of(&m).quantize(RowFormat::I8);
        let dir = unique_tmp("quant_tamper");
        let path = dir.join("model.json");
        save_checkpoint_with_table(&m, None, &quantized, &path).expect("save");
        let sidecar = table_path(&path, RowFormat::I8);
        let clean = std::fs::read(&sidecar).expect("sidecar bytes");

        // flip one bit in the code section — both backings must refuse
        let mut flipped = clean.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        std::fs::write(&sidecar, &flipped).expect("write tampered");
        for mmap in [false, true] {
            let e = load_checkpoint_with_format(&path, RowFormat::I8, mmap)
                .expect_err("tampered sidecar must not load");
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "{e}");
        }

        // a torn write (truncation) must be refused, not mapped short
        std::fs::write(&sidecar, &clean[..clean.len() / 2]).expect("truncate");
        for mmap in [false, true] {
            assert!(load_checkpoint_with_format(&path, RowFormat::I8, mmap).is_err());
        }

        // restoring the original bytes restores the load
        std::fs::write(&sidecar, &clean).expect("restore");
        assert!(load_checkpoint_with_format(&path, RowFormat::I8, true).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sidecar_from_another_model_is_rejected() {
        let a = model_seeded(77);
        let b = model_seeded(78);
        assert_ne!(embedding_checksum_of(&a), embedding_checksum_of(&b));
        let qa = f32_store_of(&a).quantize(RowFormat::I8);
        let qb = f32_store_of(&b).quantize(RowFormat::I8);
        let dir = unique_tmp("quant_stale");
        let path = dir.join("model.json");
        save_checkpoint_with_table(&a, None, &qa, &path).expect("save a");
        // clobber a's sidecar with a table built from b's embeddings: the
        // advertised checksum (and the source binding) no longer match
        write_table(&qb, embedding_checksum_of(&b), &table_path(&path, RowFormat::I8))
            .expect("write stale sidecar");
        for mmap in [false, true] {
            let e = load_checkpoint_with_format(&path, RowFormat::I8, mmap)
                .expect_err("stale sidecar must not load");
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "{e}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_unadvertised_sidecar_is_rewritten_before_mapping() {
        let a = model_seeded(77);
        let b = model_seeded(79);
        assert_ne!(embedding_checksum_of(&a), embedding_checksum_of(&b));
        let dir = unique_tmp("quant_rewrite");
        let path = dir.join("model.json");
        // plain checkpoint for b, but a stale sidecar from a squats on the
        // path mmap wants — the loader must rebuild it from b's embeddings
        save_model(&b, &path).expect("save b");
        let qa = f32_store_of(&a).quantize(RowFormat::I8);
        write_table(&qa, embedding_checksum_of(&a), &table_path(&path, RowFormat::I8))
            .expect("plant stale sidecar");
        let expected = f32_store_of(&b).quantize(RowFormat::I8);
        let (_, store, _) =
            load_checkpoint_with_format(&path, RowFormat::I8, true).expect("load b");
        assert_eq!(store.backing(), StoreBacking::Mmap);
        assert_store_bits_equal(&store, &expected);
        let header = read_table_header(&table_path(&path, RowFormat::I8)).expect("header");
        assert_eq!(header.source_checksum, embedding_checksum_of(&b));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_sidecar_bit_flip_is_caught() {
        let _guard = crate::fault_test_lock();
        let m = model(ContextExtractor::YoutubeDnn);
        let quantized = f32_store_of(&m).quantize(RowFormat::I8);
        let dir = unique_tmp("quant_fault");
        let path = dir.join("model.json");
        save_checkpoint_with_table(&m, None, &quantized, &path).expect("save");
        // the first persist.load.corrupt call tampers the checkpoint JSON;
        // skipping it aims the single budgeted flip at the sidecar bytes
        unimatch_faults::set_plan(FaultPlan {
            seed: 4,
            rules: vec![FaultRule::new("persist.load.corrupt", FaultKind::BitFlip)
                .with_probability(1.0)
                .with_skip_first(1)
                .with_max_fires(1)],
        });
        let e = load_checkpoint_with_format(&path, RowFormat::I8, true)
            .expect_err("flipped sidecar bit must not load");
        assert_eq!(e.kind(), io::ErrorKind::InvalidData, "{e}");
        // budget spent: the same call now succeeds against the clean file
        assert!(load_checkpoint_with_format(&path, RowFormat::I8, true).is_ok());
        unimatch_faults::clear();
        std::fs::remove_dir_all(&dir).ok();
    }
}
