//! Model checkpoint persistence.
//!
//! The incremental-training story of Sec. III-B3 only works in production
//! if last month's parameters survive to this month: a bundle of
//! `(ModelConfig, ParamSet)` is serialized as JSON (human-inspectable,
//! diff-able; the models are small enough — tens of thousands of floats —
//! that a binary format buys nothing).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::path::Path;
use unimatch_models::{ModelConfig, TwoTower};
use unimatch_tensor::ParamSet;

/// A serializable model checkpoint.
#[derive(serde::Serialize, serde::Deserialize)]
struct Bundle {
    format_version: u32,
    config: ModelConfig,
    params: ParamSet,
}

const FORMAT_VERSION: u32 = 1;

/// Serializes a model to JSON bytes.
pub fn model_to_json(model: &TwoTower) -> Vec<u8> {
    let bundle = Bundle {
        format_version: FORMAT_VERSION,
        config: model.config().clone(),
        params: model.params.clone(),
    };
    serde_json::to_vec(&bundle).expect("model serialization cannot fail")
}

/// Reconstructs a model from JSON bytes: rebuilds the architecture from
/// the stored config (parameter registration order is deterministic), then
/// verifies every stored parameter matches the rebuilt structure by name
/// and shape before swapping it in.
pub fn model_from_json(bytes: &[u8]) -> io::Result<TwoTower> {
    let bundle: Bundle = serde_json::from_slice(bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if bundle.format_version != FORMAT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {}", bundle.format_version),
        ));
    }
    // the RNG only initializes weights we immediately overwrite
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = TwoTower::new(bundle.config, &mut rng);
    if model.params.len() != bundle.params.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint has {} parameters, architecture expects {}",
                bundle.params.len(),
                model.params.len()
            ),
        ));
    }
    for (fresh, stored) in model.params.iter().zip(bundle.params.iter()) {
        let (fresh, stored) = (fresh.1, stored.1);
        if fresh.name != stored.name || fresh.value.shape() != stored.value.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "checkpoint parameter {} {} does not match architecture {} {}",
                    stored.name,
                    stored.value.shape(),
                    fresh.name,
                    fresh.value.shape()
                ),
            ));
        }
    }
    model.params = bundle.params;
    Ok(model)
}

/// Saves a model checkpoint to a file.
pub fn save_model(model: &TwoTower, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, model_to_json(model))
}

/// Loads a model checkpoint from a file.
pub fn load_model(path: impl AsRef<Path>) -> io::Result<TwoTower> {
    model_from_json(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimatch_data::SeqBatch;
    use unimatch_models::{Aggregator, ContextExtractor};

    fn model(extractor: ContextExtractor) -> TwoTower {
        let mut rng = StdRng::seed_from_u64(77);
        TwoTower::new(
            ModelConfig {
                num_items: 20,
                embed_dim: 8,
                max_seq_len: 6,
                extractor,
                aggregator: Aggregator::Attention,
                temperature: 0.2,
                normalize: true,
            },
            &mut rng,
        )
    }

    #[test]
    fn round_trip_preserves_inference() {
        for extractor in ContextExtractor::ALL {
            let m = model(extractor);
            let restored = model_from_json(&model_to_json(&m)).expect("round trip");
            let h = vec![1u32, 5, 9];
            let batch = SeqBatch::from_histories(&[&h], 6);
            assert_eq!(
                m.infer_users(&batch).data(),
                restored.infer_users(&batch).data(),
                "{}",
                extractor.label()
            );
            assert_eq!(m.infer_items().data(), restored.infer_items().data());
        }
    }

    #[test]
    fn corrupted_checkpoint_rejected() {
        assert!(model_from_json(b"not json").is_err());
    }

    #[test]
    fn mismatched_architecture_rejected() {
        // serialize a GRU model, then tamper with the config to claim LSTM:
        // the parameter names will not match and loading must fail
        let m = model(ContextExtractor::Gru);
        let json = String::from_utf8(model_to_json(&m)).expect("utf8");
        let tampered = json.replace("\"Gru\"", "\"Lstm\"");
        assert!(model_from_json(tampered.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("unimatch_persist_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("model.json");
        let m = model(ContextExtractor::YoutubeDnn);
        save_model(&m, &path).expect("save");
        let restored = load_model(&path).expect("load");
        assert_eq!(m.params.num_scalars(), restored.params.num_scalars());
        std::fs::remove_file(&path).ok();
    }
}
