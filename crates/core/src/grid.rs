//! Hyperparameter grid search on the validation month (Tab. VII).
//!
//! The paper tunes batch size, temperature and epochs per dataset ×
//! distribution by NDCG on the validation data; this module reproduces
//! that procedure against the validation split (the true test month is
//! never touched).

use crate::evaluate::evaluate;
use crate::hyper::Hyperparams;
use crate::prepare::PreparedData;
use rand::rngs::StdRng;
use rand::SeedableRng;
use unimatch_eval::ProtocolConfig;
use unimatch_models::{ModelConfig, TwoTower};
use unimatch_train::{AdamConfig, TrainConfig, TrainLoss, Trainer};

/// The grid to sweep.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Batch sizes to try.
    pub batch_sizes: Vec<usize>,
    /// Temperatures to try.
    pub temperatures: Vec<f32>,
    /// Epochs-per-month values to try.
    pub epochs: Vec<usize>,
    /// Fixed learning rate.
    pub lr: f32,
}

impl GridSpec {
    /// A small default grid around the paper's Tab. VII values.
    pub fn small() -> Self {
        GridSpec {
            batch_sizes: vec![64, 128],
            temperatures: vec![0.1, 0.1667, 0.25, 0.5],
            epochs: vec![2, 3],
            lr: 0.01,
        }
    }
}

/// One grid evaluation.
#[derive(Clone, Copy, Debug)]
pub struct GridPoint {
    /// The hyperparameters evaluated.
    pub hyper: Hyperparams,
    /// Validation NDCG averaged over IR and UT (the selection criterion).
    pub val_ndcg: f64,
}

/// Sweeps the grid, returning every point sorted best-first.
pub fn grid_search(
    prepared: &PreparedData,
    loss: TrainLoss,
    grid: &GridSpec,
    protocol: &ProtocolConfig,
    seed: u64,
) -> Vec<GridPoint> {
    let val_split = prepared.validation_split();
    let mut points = Vec::new();
    for &batch_size in &grid.batch_sizes {
        for &temperature in &grid.temperatures {
            for &epochs in &grid.epochs {
                let hyper = Hyperparams { batch_size, temperature, epochs, lr: grid.lr };
                let model_cfg = ModelConfig {
                    num_items: prepared.num_items(),
                    embed_dim: 16,
                    max_seq_len: prepared.max_seq_len,
                    extractor: unimatch_models::ContextExtractor::YoutubeDnn,
                    aggregator: unimatch_models::Aggregator::Mean,
                    temperature,
                    normalize: true,
                };
                let mut rng = StdRng::seed_from_u64(seed);
                let model = TwoTower::new(model_cfg, &mut rng);
                let cfg = TrainConfig {
                    batch_size,
                    epochs_per_month: epochs,
                    max_seq_len: prepared.max_seq_len,
                    optimizer: AdamConfig::with_lr(grid.lr),
                    loss,
                    seed: seed ^ 0x617d,
                };
                let mut trainer = Trainer::new(model, cfg);
                let marginals = unimatch_data::Marginals::from_samples(
                    &val_split.train,
                    prepared.log.num_users(),
                    prepared.log.num_items(),
                );
                trainer
                    .train_incremental(&val_split, &marginals)
                    .unwrap_or_else(|e| panic!("grid cell training failed: {e}"));
                let out = evaluate(
                    &trainer.model,
                    &val_split,
                    protocol,
                    prepared.max_seq_len,
                    seed ^ 0xe7a1,
                );
                points.push(GridPoint { hyper, val_ndcg: out.avg_ndcg() });
            }
        }
    }
    points.sort_by(|a, b| b.val_ndcg.partial_cmp(&a.val_ndcg).unwrap_or(std::cmp::Ordering::Equal));
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimatch_data::DatasetProfile;
    use unimatch_losses::{BiasConfig, MultinomialLoss};

    #[test]
    fn grid_search_ranks_points() {
        let prepared = PreparedData::synthetic(DatasetProfile::EComp, 0.12, 31);
        let grid = GridSpec {
            batch_sizes: vec![32],
            temperatures: vec![0.15, 0.6],
            epochs: vec![1],
            lr: 0.02,
        };
        let protocol = ProtocolConfig { top_n: 10, negatives: 30 };
        let points = grid_search(
            &prepared,
            TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
            &grid,
            &protocol,
            5,
        );
        assert_eq!(points.len(), 2);
        assert!(points[0].val_ndcg >= points[1].val_ndcg);
        assert!(points.iter().all(|p| p.val_ndcg.is_finite()));
    }
}
