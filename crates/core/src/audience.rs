//! Campaign audience construction — the merchant workflow the paper's
//! introduction motivates: practitioners "create multiple targeting lists
//! according to different promotion subjects, e.g., popular products or
//! bundles of items", then message each list. This module turns the
//! fitted model's UT capability into concrete, de-duplicated lists with
//! the business rules a real campaign needs (recent-buyer exclusion,
//! frequency capping).

use crate::framework::FittedUniMatch;
use std::collections::{HashMap, HashSet};
use unimatch_data::InteractionLog;

/// What a campaign promotes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CampaignSubject {
    /// One item.
    Item(u32),
    /// A bundle: the query is the normalized mean of the items' embeddings
    /// (the paper's "bundles of items" promotion subject).
    Bundle(Vec<u32>),
}

/// A targeting-list request.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Campaign name (report key).
    pub name: String,
    /// Promotion subject.
    pub subject: CampaignSubject,
    /// Desired list size.
    pub list_size: usize,
    /// Exclude users who already bought any subject item within this many
    /// trailing days (None ⇒ no exclusion).
    pub exclude_buyers_within_days: Option<u32>,
    /// Explicitly excluded user ids (opt-outs, blocklists).
    pub exclude_users: HashSet<u32>,
}

impl CampaignSpec {
    /// A plain single-item campaign with no exclusions.
    pub fn item(name: impl Into<String>, item: u32, list_size: usize) -> Self {
        CampaignSpec {
            name: name.into(),
            subject: CampaignSubject::Item(item),
            list_size,
            exclude_buyers_within_days: None,
            exclude_users: HashSet::new(),
        }
    }

    fn subject_items(&self) -> Vec<u32> {
        match &self.subject {
            CampaignSubject::Item(i) => vec![*i],
            CampaignSubject::Bundle(items) => items.clone(),
        }
    }
}

/// One built list: `(user, affinity)` pairs, best first.
#[derive(Clone, Debug)]
pub struct TargetingList {
    /// The campaign's name.
    pub name: String,
    /// Ranked targeted users.
    pub users: Vec<(u32, f32)>,
}

/// Builds one targeting list.
pub fn build_targeting_list(
    fitted: &FittedUniMatch,
    log: &InteractionLog,
    spec: &CampaignSpec,
) -> TargetingList {
    let items = spec.subject_items();
    assert!(!items.is_empty(), "campaign needs at least one subject item");
    let query = subject_query(fitted, &items);

    // recent-buyer exclusion set
    let mut excluded = spec.exclude_users.clone();
    if let Some(days) = spec.exclude_buyers_within_days {
        let last_day = log.records().iter().map(|r| r.day).max().unwrap_or(0);
        let cutoff = last_day.saturating_sub(days);
        let subject: HashSet<u32> = items.iter().copied().collect();
        for r in log.records() {
            if r.day >= cutoff && subject.contains(&r.item) {
                excluded.insert(r.user);
            }
        }
    }

    // over-fetch to survive exclusions, then filter
    let fetch = (spec.list_size + excluded.len()).max(spec.list_size * 2);
    let users = fitted
        .target_users_by_embedding(&query, fetch)
        .into_iter()
        .filter(|(u, _)| !excluded.contains(u))
        .take(spec.list_size)
        .collect();
    TargetingList { name: spec.name.clone(), users }
}

/// Builds several campaign lists with a per-user contact cap: a user
/// appears in at most `max_contacts_per_user` lists (campaigns earlier in
/// the slice have priority), the merchant-side frequency-capping rule.
pub fn plan_campaigns(
    fitted: &FittedUniMatch,
    log: &InteractionLog,
    specs: &[CampaignSpec],
    max_contacts_per_user: usize,
) -> Vec<TargetingList> {
    assert!(max_contacts_per_user >= 1, "contact cap must be >= 1");
    let mut contacts: HashMap<u32, usize> = HashMap::new();
    let mut lists = Vec::with_capacity(specs.len());
    for spec in specs {
        let raw = build_targeting_list(fitted, log, spec);
        let mut capped = Vec::with_capacity(spec.list_size);
        for (user, score) in raw.users {
            let c = contacts.entry(user).or_insert(0);
            if *c < max_contacts_per_user {
                *c += 1;
                capped.push((user, score));
            }
        }
        lists.push(TargetingList { name: spec.name.clone(), users: capped });
    }
    lists
}

/// The (normalized) query embedding for a promotion subject, blended
/// from the fitted model's item store rows (same bits as re-running item
/// inference, without the forward pass).
fn subject_query(fitted: &FittedUniMatch, items: &[u32]) -> Vec<f32> {
    let store = fitted.item_store();
    let d = store.dim();
    let mut query = vec![0.0f32; d];
    for &i in items {
        let row = store.decode_row(i as usize);
        for (q, &x) in query.iter_mut().zip(row.iter()) {
            *q += x;
        }
    }
    let norm = query.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    for q in query.iter_mut() {
        *q /= norm;
    }
    query
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{UniMatch, UniMatchConfig};
    use unimatch_data::DatasetProfile;

    fn fitted_and_log() -> (FittedUniMatch, InteractionLog) {
        let log = DatasetProfile::WComp.generate(0.15, 51).filter_min_interactions(3);
        let fitted =
            UniMatch::new(UniMatchConfig { epochs_per_month: 1, ..Default::default() }).fit(log.clone());
        (fitted, log)
    }

    #[test]
    fn list_has_requested_size_and_order() {
        let (fitted, log) = fitted_and_log();
        let spec = CampaignSpec::item("promo", 0, 25);
        let list = build_targeting_list(&fitted, &log, &spec);
        assert_eq!(list.users.len(), 25);
        assert!(list.users.windows(2).all(|w| w[0].1 >= w[1].1));
        let distinct: HashSet<u32> = list.users.iter().map(|&(u, _)| u).collect();
        assert_eq!(distinct.len(), 25, "no duplicate users");
    }

    #[test]
    fn explicit_exclusions_are_respected() {
        let (fitted, log) = fitted_and_log();
        let base = build_targeting_list(&fitted, &log, &CampaignSpec::item("a", 0, 10));
        let banned: HashSet<u32> = base.users.iter().take(3).map(|&(u, _)| u).collect();
        let spec = CampaignSpec {
            exclude_users: banned.clone(),
            ..CampaignSpec::item("b", 0, 10)
        };
        let list = build_targeting_list(&fitted, &log, &spec);
        assert!(list.users.iter().all(|(u, _)| !banned.contains(u)));
        assert_eq!(list.users.len(), 10);
    }

    #[test]
    fn recent_buyers_are_excluded() {
        let (fitted, log) = fitted_and_log();
        let item = 0u32;
        let last_day = log.records().iter().map(|r| r.day).max().expect("records");
        let recent: HashSet<u32> = log
            .records()
            .iter()
            .filter(|r| r.item == item && r.day >= last_day.saturating_sub(60))
            .map(|r| r.user)
            .collect();
        let spec = CampaignSpec {
            exclude_buyers_within_days: Some(60),
            ..CampaignSpec::item("no-recents", item, 20)
        };
        let list = build_targeting_list(&fitted, &log, &spec);
        assert!(
            list.users.iter().all(|(u, _)| !recent.contains(u)),
            "a recent buyer slipped into the list"
        );
    }

    #[test]
    fn bundle_query_is_unit_norm_blend() {
        let (fitted, log) = fitted_and_log();
        let spec = CampaignSpec {
            subject: CampaignSubject::Bundle(vec![0, 1, 2]),
            ..CampaignSpec::item("bundle", 0, 15)
        };
        let list = build_targeting_list(&fitted, &log, &spec);
        assert_eq!(list.users.len(), 15);
    }

    #[test]
    fn frequency_cap_limits_cross_campaign_contacts() {
        let (fitted, log) = fitted_and_log();
        let specs: Vec<CampaignSpec> =
            (0..4).map(|i| CampaignSpec::item(format!("c{i}"), i, 30)).collect();
        let lists = plan_campaigns(&fitted, &log, &specs, 2);
        let mut contact_count: HashMap<u32, usize> = HashMap::new();
        for l in &lists {
            for &(u, _) in &l.users {
                *contact_count.entry(u).or_insert(0) += 1;
            }
        }
        assert!(contact_count.values().all(|&c| c <= 2), "contact cap violated");
        // priority: the first campaign keeps its full list
        assert_eq!(lists[0].users.len(), 30);
    }
}
