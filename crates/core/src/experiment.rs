//! The experiment runner: one (dataset, loss, model) configuration from
//! raw log to metrics. Every table/figure binary in `unimatch-bench` is a
//! loop over these specs.

use crate::evaluate::{
    evaluate, evaluate_params, evaluate_with_audit, EvalOutcome, RetrievalAudit,
};
use crate::hyper::{Hyperparams, Pathway};
use crate::prepare::PreparedData;
use rand::rngs::StdRng;
use rand::SeedableRng;
use unimatch_data::DatasetProfile;
use unimatch_eval::ProtocolConfig;
use unimatch_models::{Aggregator, ContextExtractor, ModelConfig, TwoTower};
use unimatch_train::{AdamConfig, TrainConfig, TrainLoss, TrainStats, Trainer};

/// One experiment configuration.
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Dataset profile.
    pub profile: DatasetProfile,
    /// Generator scale.
    pub scale: f64,
    /// Master seed (data, init, shuffling, eval sampling).
    pub seed: u64,
    /// Loss pathway.
    pub loss: TrainLoss,
    /// Context extractor.
    pub extractor: ContextExtractor,
    /// Aggregator.
    pub aggregator: Aggregator,
    /// Embedding dimension (paper: 16).
    pub embed_dim: usize,
    /// L2-normalize tower outputs (Eq. 13; false only for the ablation).
    pub normalize: bool,
    /// Hyperparameters (None ⇒ the paper's Tab. VII cell).
    pub hyper: Option<Hyperparams>,
}

impl ExperimentSpec {
    /// The paper's default setup (Youtube-DNN + mean pooling) for a
    /// profile and loss.
    pub fn baseline(profile: DatasetProfile, scale: f64, seed: u64, loss: TrainLoss) -> Self {
        ExperimentSpec {
            profile,
            scale,
            seed,
            loss,
            extractor: ContextExtractor::YoutubeDnn,
            aggregator: Aggregator::Mean,
            embed_dim: 16,
            normalize: true,
            hyper: None,
        }
    }

    /// The pathway this spec trains under.
    pub fn pathway(&self) -> Pathway {
        match self.loss {
            TrainLoss::Bce(_) => Pathway::Bernoulli,
            TrainLoss::Multinomial(_) => Pathway::Multinomial,
        }
    }

    /// Effective hyperparameters.
    pub fn hyperparams(&self) -> Hyperparams {
        self.hyper
            .unwrap_or_else(|| Hyperparams::paper(self.profile, self.pathway()))
    }

    /// The evaluation protocol for this profile (Tab. VI).
    pub fn protocol(&self) -> ProtocolConfig {
        ProtocolConfig {
            top_n: self.profile.top_n(),
            negatives: self.profile.num_eval_negatives(),
        }
    }
}

/// One point of the Fig. 3 curve.
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    /// Months of training data missing before the test month.
    pub months_behind: u32,
    /// IR NDCG of the checkpoint.
    pub ir_ndcg: f64,
    /// UT NDCG of the checkpoint.
    pub ut_ndcg: f64,
}

/// Everything an experiment produces.
#[derive(Clone, Debug)]
pub struct ExperimentOutcome {
    /// Final-model metrics.
    pub eval: EvalOutcome,
    /// Training consumption counters.
    pub stats: TrainStats,
    /// Fig. 3 curve (present when requested).
    pub curve: Vec<CurvePoint>,
    /// Tab. XI audit (present when requested).
    pub audit: Option<RetrievalAudit>,
    /// Wall-clock training time.
    pub train_secs: f64,
}

/// Extra outputs to compute.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExperimentOptions {
    /// Evaluate the trailing `curve_points` checkpoints (Fig. 3).
    pub curve_points: usize,
    /// Audit retrieved-entity popularity (Tab. XI).
    pub audit: bool,
}

/// Runs one experiment end to end on freshly prepared data.
pub fn run_experiment(spec: &ExperimentSpec, opts: &ExperimentOptions) -> ExperimentOutcome {
    let prepared = PreparedData::synthetic(spec.profile, spec.scale, spec.seed);
    run_experiment_on(spec, opts, &prepared)
}

/// Runs one experiment on already-prepared data (lets table binaries share
/// a dataset across loss rows, as the paper does).
pub fn run_experiment_on(
    spec: &ExperimentSpec,
    opts: &ExperimentOptions,
    prepared: &PreparedData,
) -> ExperimentOutcome {
    let hp = spec.hyperparams();
    let model_cfg = ModelConfig {
        num_items: prepared.num_items(),
        embed_dim: spec.embed_dim,
        max_seq_len: prepared.max_seq_len,
        extractor: spec.extractor,
        aggregator: spec.aggregator,
        temperature: hp.temperature,
        normalize: spec.normalize,
    };
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let model = TwoTower::new(model_cfg, &mut rng);
    let train_cfg = TrainConfig {
        batch_size: hp.batch_size,
        epochs_per_month: hp.epochs,
        max_seq_len: prepared.max_seq_len,
        optimizer: AdamConfig::with_lr(hp.lr),
        loss: spec.loss,
        seed: spec.seed ^ 0xabcd,
    };
    let mut trainer = Trainer::new(model, train_cfg);

    let t0 = std::time::Instant::now();
    let checkpoints = trainer
        .train_incremental(&prepared.split, &prepared.marginals)
        .unwrap_or_else(|e| panic!("experiment training failed: {e}"));
    let train_secs = t0.elapsed().as_secs_f64();

    let protocol = spec.protocol();
    let eval_seed = spec.seed ^ 0x5eed;
    let stats = *trainer.stats();
    let mut model = trainer.model;

    let (eval_outcome, audit) = if opts.audit {
        let item_counts = prepared.log.item_counts();
        let user_counts = prepared.log.user_counts();
        let (o, a) = evaluate_with_audit(
            &model,
            &prepared.split,
            &protocol,
            prepared.max_seq_len,
            eval_seed,
            (&item_counts, &user_counts),
        );
        (o, Some(a))
    } else {
        (
            evaluate(&model, &prepared.split, &protocol, prepared.max_seq_len, eval_seed),
            None,
        )
    };

    let mut curve = Vec::new();
    if opts.curve_points > 0 {
        let take = opts.curve_points.min(checkpoints.len());
        for cp in &checkpoints[checkpoints.len() - take..] {
            let out = evaluate_params(
                &mut model,
                &cp.params,
                &prepared.split,
                &protocol,
                prepared.max_seq_len,
                eval_seed,
            );
            curve.push(CurvePoint {
                months_behind: cp.months_behind(prepared.split.test_month),
                ir_ndcg: out.ir.ndcg,
                ut_ndcg: out.ut.ndcg,
            });
        }
        curve.sort_by_key(|p| std::cmp::Reverse(p.months_behind));
    }

    ExperimentOutcome { eval: eval_outcome, stats, curve, audit, train_secs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimatch_losses::{BiasConfig, MultinomialLoss};

    #[test]
    fn bbcnce_experiment_beats_chance_on_both_tasks() {
        let spec = ExperimentSpec {
            scale: 0.2,
            ..ExperimentSpec::baseline(
                DatasetProfile::EComp,
                0.2,
                7,
                TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
            )
        };
        let out = run_experiment(&spec, &ExperimentOptions::default());
        // chance hitrate@10 with 99 negatives = 0.1
        assert!(out.eval.ir.recall > 0.15, "IR recall {}", out.eval.ir.recall);
        assert!(out.eval.ut.recall > 0.15, "UT recall {}", out.eval.ut.recall);
        assert!(out.train_secs > 0.0);
    }

    #[test]
    fn curve_points_are_ordered() {
        let spec = ExperimentSpec::baseline(
            DatasetProfile::EComp,
            0.15,
            9,
            TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
        );
        let out = run_experiment(&spec, &ExperimentOptions { curve_points: 3, audit: false });
        assert_eq!(out.curve.len(), 3);
        assert!(out.curve.windows(2).all(|w| w[0].months_behind > w[1].months_behind));
        assert_eq!(out.curve.last().expect("points").months_behind, 0);
    }
}
