//! End-to-end dataset preparation: generate (or accept) a log, filter,
//! window, split, and compute marginals — the common prefix of every
//! experiment.

use unimatch_data::windowing::{build_samples, WindowConfig};
use unimatch_data::{temporal_split, DatasetProfile, InteractionLog, Marginals, TemporalSplit};

/// A fully prepared dataset, ready to train and evaluate on.
#[derive(Clone, Debug)]
pub struct PreparedData {
    /// The filtered interaction log.
    pub log: InteractionLog,
    /// Temporal train/val/test split of the windowed samples.
    pub split: TemporalSplit,
    /// Empirical marginals over the *training* samples (the bias terms).
    pub marginals: Marginals,
    /// History truncation used for windowing.
    pub max_seq_len: usize,
}

impl PreparedData {
    /// Prepares a synthetic profile at the given scale.
    pub fn synthetic(profile: DatasetProfile, scale: f64, seed: u64) -> Self {
        let log = profile.generate(scale, seed).filter_min_interactions(3);
        Self::from_log(log, profile.max_seq_len())
    }

    /// Prepares from a raw log (the production entry point for real data).
    pub fn from_log(log: InteractionLog, max_seq_len: usize) -> Self {
        let samples = build_samples(&log, &WindowConfig { max_seq_len, min_history: 1 });
        let split = temporal_split(&samples, log.span_months());
        let marginals = Marginals::from_samples(&split.train, log.num_users(), log.num_items());
        PreparedData { log, split, marginals, max_seq_len }
    }

    /// A split where the validation month plays the test role: months
    /// `< T-2` train, month `T-2` tests. Used for hyperparameter search so
    /// the real test month stays untouched (Sec. IV-A2).
    pub fn validation_split(&self) -> TemporalSplit {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for s in &self.split.train {
            if s.month() == self.split.val_month {
                test.push(s.clone());
            } else {
                train.push(s.clone());
            }
        }
        let val_month = self.split.val_month.saturating_sub(1);
        let val = train.iter().filter(|s| s.month() == val_month).cloned().collect();
        TemporalSplit { train, val, test, val_month, test_month: self.split.val_month }
    }

    /// Item-vocabulary size (dense id universe).
    pub fn num_items(&self) -> usize {
        self.log.num_items() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_preparation_is_consistent() {
        let p = PreparedData::synthetic(DatasetProfile::EComp, 0.15, 3);
        assert!(!p.split.train.is_empty());
        assert!(!p.split.test.is_empty());
        assert_eq!(p.split.test_month, p.log.span_months() - 1);
        // all sample items within vocabulary
        for s in p.split.train.iter().chain(p.split.test.iter()) {
            assert!((s.target as usize) < p.num_items());
            assert!(s.history.iter().all(|&i| (i as usize) < p.num_items()));
        }
    }

    #[test]
    fn validation_split_shifts_test_month() {
        let p = PreparedData::synthetic(DatasetProfile::EComp, 0.15, 4);
        let v = p.validation_split();
        assert_eq!(v.test_month, p.split.val_month);
        assert!(v.test.iter().all(|s| s.month() == v.test_month));
        assert!(v.train.iter().all(|s| s.month() < v.test_month));
        // no leakage: validation-split training data excludes its test month
        let total = v.train.len() + v.test.len();
        assert_eq!(total, p.split.train.len());
    }
}
