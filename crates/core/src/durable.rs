//! Crash-safe durable incremental training.
//!
//! The paper's production story (Sec. III-B3) is a *monthly* incremental
//! update: each cycle consumes one month of data from last cycle's
//! parameters. A long multi-month (re)build of that chain is exactly the
//! kind of job that dies halfway — node preemption, OOM, `kill -9` — and
//! restarting from scratch forfeits the 1/12 cost factor the schedule
//! exists to buy. This module makes the chain durable:
//!
//! * **Per-month checkpoints, committed atomically.** After every clean
//!   month the model document (format v2, checksummed), the full Adam
//!   state, and the cumulative [`TrainStats`] are written to a per-month
//!   file via tmp+rename, then recorded in a `manifest.json` (also
//!   tmp+rename). A crash at *any* instant leaves the run directory
//!   describing a consistent prefix of the run.
//! * **Exact resume.** [`train_durable`] reads the manifest, loads the
//!   last committed month's checkpoint (with bounded retry for transient
//!   I/O), and continues from the following month. Because the shuffling
//!   RNG is reseeded per month from `(seed, month, attempt)` and the Adam
//!   state round-trips bit-exactly, a killed-and-resumed run produces the
//!   **same parameters** as an uninterrupted one.
//! * **Health rollback.** Each month trains under a fresh
//!   [`unimatch_train::HealthMonitor`]; a non-finite loss or a
//!   gradient-norm spike rolls
//!   the month back to its starting snapshot (parameters *and* optimizer
//!   state), multiplies the learning rate by `lr_backoff`, and retries
//!   within a bounded budget. The backoff survives restarts — the scale
//!   is part of the manifest.
//!
//! Fault seams for the kill tests: `durable.pre_commit` crashes after a
//! month trained but *before* its checkpoint is written (resume retrains
//! the month); `durable.month_end` crashes after the manifest commit
//! (resume starts at the next month). Counters surface through
//! `unimatch-obs`: `unimatch_durable_rollbacks_total`,
//! `unimatch_durable_lr_backoffs_total`,
//! `unimatch_durable_months_resumed_total`.

use crate::persist::{
    bad, field, is_transient, model_from_json_value, model_to_json_value, tensor_from_json,
    tensor_to_json, usize_field, RetryPolicy,
};
use crate::prepare::PreparedData;
use std::io;
use std::path::{Path, PathBuf};
use unimatch_data::json::Json;
use unimatch_data::{Marginals, TemporalSplit};
use unimatch_faults::FaultPoint;
use unimatch_models::TwoTower;
use unimatch_obs as obs;
use unimatch_train::{
    AdamState, HealthConfig, TrainConfig, TrainError, TrainStats, Trainer,
};

const MANIFEST_MAGIC: &str = "unimatch-run";
const MONTH_MAGIC: &str = "unimatch-run-month";
const MANIFEST_VERSION: u64 = 1;

const PRE_COMMIT_FAULT: FaultPoint = FaultPoint::new("durable.pre_commit");
const MONTH_END_FAULT: FaultPoint = FaultPoint::new("durable.month_end");

/// What can go wrong in a durable run.
#[derive(Debug)]
pub enum DurableError {
    /// Reading or writing run-directory state failed.
    Io(io::Error),
    /// Training itself failed (bad config, SSM context mismatch).
    Train(TrainError),
    /// A month stayed unhealthy through every rollback/LR-backoff retry.
    RetriesExhausted {
        /// The month that would not train cleanly.
        month: u32,
        /// How many retries were spent on it.
        retries: u32,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable run I/O error: {e}"),
            DurableError::Train(e) => write!(f, "durable run training error: {e}"),
            DurableError::RetriesExhausted { month, retries } => write!(
                f,
                "month {month} stayed unhealthy after {retries} rollback retries"
            ),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<TrainError> for DurableError {
    fn from(e: TrainError) -> Self {
        DurableError::Train(e)
    }
}

/// Durability and recovery knobs.
#[derive(Clone, Debug)]
pub struct DurableConfig {
    /// Directory holding `manifest.json` and the per-month checkpoints.
    pub run_dir: PathBuf,
    /// Health thresholds each month trains under.
    pub health: HealthConfig,
    /// Rollback retries allowed per month before the run gives up.
    pub max_retries_per_month: u32,
    /// Learning-rate multiplier applied at each rollback (`0 < f < 1`).
    pub lr_backoff: f32,
    /// Retry policy for reading checkpoints back (transient I/O only).
    pub retry: RetryPolicy,
}

impl DurableConfig {
    /// Defaults around a run directory: default health thresholds, two
    /// retries per month, halve the LR on rollback.
    pub fn new(run_dir: impl Into<PathBuf>) -> DurableConfig {
        DurableConfig {
            run_dir: run_dir.into(),
            health: HealthConfig::default(),
            max_retries_per_month: 2,
            lr_backoff: 0.5,
            retry: RetryPolicy::default(),
        }
    }
}

/// One committed month in the manifest.
#[derive(Clone, Debug)]
pub struct MonthRecord {
    /// The training month this record commits.
    pub month: u32,
    /// Checkpoint file name, relative to the run directory.
    pub file: String,
    /// Mean loss over the month's epochs.
    pub mean_loss: f32,
    /// LR scale in effect when the month finished (product of backoffs).
    pub lr_scale: f32,
    /// Cumulative consumption stats through this month.
    pub stats: TrainStats,
}

/// The run manifest: which months are committed, under which seed.
#[derive(Clone, Debug)]
pub struct RunManifest {
    /// The training seed the run was started with; a resume under a
    /// different seed is rejected rather than silently diverging.
    pub seed: u64,
    /// Committed months, in training order.
    pub months: Vec<MonthRecord>,
}

/// A completed durable run.
#[derive(Debug)]
pub struct DurableRun {
    /// The final trained model.
    pub model: TwoTower,
    /// Cumulative consumption stats (identical to an uninterrupted run).
    pub stats: TrainStats,
    /// The manifest as committed on disk.
    pub manifest: RunManifest,
    /// The month the run resumed after, if it picked up existing state.
    pub resumed_after: Option<u32>,
    /// Health rollbacks performed during this invocation.
    pub rollbacks: u32,
}

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

fn stats_to_json(s: &TrainStats) -> Json {
    Json::obj(vec![
        ("steps", Json::int(s.steps as usize)),
        ("records_consumed", Json::int(s.records_consumed as usize)),
        ("loss_sum", Json::Num(s.loss_sum)),
    ])
}

fn stats_from_json(v: &Json) -> io::Result<TrainStats> {
    Ok(TrainStats {
        steps: usize_field(v, "steps")? as u64,
        records_consumed: usize_field(v, "records_consumed")? as u64,
        loss_sum: field(v, "loss_sum")?
            .as_f64()
            .ok_or_else(|| bad("loss_sum is not a number"))?,
    })
}

fn f32_field(v: &Json, key: &str) -> io::Result<f32> {
    field(v, key)?
        .as_f32()
        .ok_or_else(|| bad(format!("field {key} is not a number")))
}

fn adam_state_to_json(s: &AdamState) -> Json {
    let dense = Json::Arr(
        s.dense
            .iter()
            .map(|(name, m, v)| {
                Json::obj(vec![
                    ("name", Json::str(name.clone())),
                    ("m", tensor_to_json(m)),
                    ("v", tensor_to_json(v)),
                ])
            })
            .collect(),
    );
    let sparse = Json::Arr(
        s.sparse
            .iter()
            .map(|(name, rows)| {
                let rows = Json::Arr(
                    rows.iter()
                        .map(|(row, m, v)| {
                            Json::obj(vec![
                                ("row", Json::int(*row as usize)),
                                ("m", Json::Arr(m.iter().map(|&x| Json::F32(x)).collect())),
                                ("v", Json::Arr(v.iter().map(|&x| Json::F32(x)).collect())),
                            ])
                        })
                        .collect(),
                );
                Json::obj(vec![("name", Json::str(name.clone())), ("rows", rows)])
            })
            .collect(),
    );
    Json::obj(vec![
        ("t", Json::int(s.t as usize)),
        ("dense", dense),
        ("sparse", sparse),
    ])
}

fn f32_vec_from_json(v: &Json, what: &str) -> io::Result<Vec<f32>> {
    v.as_array()
        .ok_or_else(|| bad(format!("{what} is not an array")))?
        .iter()
        .map(|x| x.as_f32().ok_or_else(|| bad(format!("bad element in {what}"))))
        .collect()
}

fn adam_state_from_json(v: &Json) -> io::Result<AdamState> {
    let dense = field(v, "dense")?
        .as_array()
        .ok_or_else(|| bad("dense state is not an array"))?
        .iter()
        .map(|e| {
            Ok((
                field(e, "name")?
                    .as_str()
                    .ok_or_else(|| bad("dense state name is not a string"))?
                    .to_string(),
                tensor_from_json(field(e, "m")?)?,
                tensor_from_json(field(e, "v")?)?,
            ))
        })
        .collect::<io::Result<Vec<_>>>()?;
    let sparse = field(v, "sparse")?
        .as_array()
        .ok_or_else(|| bad("sparse state is not an array"))?
        .iter()
        .map(|e| {
            let rows = field(e, "rows")?
                .as_array()
                .ok_or_else(|| bad("sparse rows is not an array"))?
                .iter()
                .map(|r| {
                    Ok((
                        usize_field(r, "row")? as u32,
                        f32_vec_from_json(field(r, "m")?, "sparse m")?,
                        f32_vec_from_json(field(r, "v")?, "sparse v")?,
                    ))
                })
                .collect::<io::Result<Vec<_>>>()?;
            Ok((
                field(e, "name")?
                    .as_str()
                    .ok_or_else(|| bad("sparse state name is not a string"))?
                    .to_string(),
                rows,
            ))
        })
        .collect::<io::Result<Vec<_>>>()?;
    Ok(AdamState { t: usize_field(v, "t")? as u64, dense, sparse })
}

fn manifest_to_json(m: &RunManifest) -> Json {
    Json::obj(vec![
        ("magic", Json::str(MANIFEST_MAGIC)),
        ("format_version", Json::int(MANIFEST_VERSION as usize)),
        // the seed is written as hex so u64 values above 2^53 survive the
        // JSON number path exactly
        ("seed", Json::str(format!("{:016x}", m.seed))),
        (
            "months",
            Json::Arr(
                m.months
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("month", Json::int(r.month as usize)),
                            ("file", Json::str(r.file.clone())),
                            ("mean_loss", Json::F32(r.mean_loss)),
                            ("lr_scale", Json::F32(r.lr_scale)),
                            ("stats", stats_to_json(&r.stats)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn manifest_from_json(doc: &Json) -> io::Result<RunManifest> {
    let magic = field(doc, "magic")?
        .as_str()
        .ok_or_else(|| bad("manifest magic is not a string"))?;
    if magic != MANIFEST_MAGIC {
        return Err(bad(format!("not a unimatch run manifest (magic `{magic}`)")));
    }
    let version = usize_field(doc, "format_version")? as u64;
    if version != MANIFEST_VERSION {
        return Err(bad(format!("unsupported manifest version {version}")));
    }
    let seed_hex = field(doc, "seed")?
        .as_str()
        .ok_or_else(|| bad("manifest seed is not a string"))?;
    let seed = u64::from_str_radix(seed_hex, 16)
        .map_err(|_| bad(format!("manifest seed `{seed_hex}` is not hex")))?;
    let months = field(doc, "months")?
        .as_array()
        .ok_or_else(|| bad("manifest months is not an array"))?
        .iter()
        .map(|r| {
            Ok(MonthRecord {
                month: usize_field(r, "month")? as u32,
                file: field(r, "file")?
                    .as_str()
                    .ok_or_else(|| bad("month file is not a string"))?
                    .to_string(),
                mean_loss: f32_field(r, "mean_loss")?,
                lr_scale: f32_field(r, "lr_scale")?,
                stats: stats_from_json(field(r, "stats")?)?,
            })
        })
        .collect::<io::Result<Vec<_>>>()?;
    Ok(RunManifest { seed, months })
}

// ---------------------------------------------------------------------------
// files
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` atomically (tmp sibling + rename), the same
/// discipline as [`crate::persist::save_model`].
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            std::fs::remove_file(&tmp).ok();
            Err(e)
        }
    }
}

/// Reads a file with bounded retry for transient I/O errors.
fn read_with_retry(path: &Path, policy: &RetryPolicy) -> io::Result<Vec<u8>> {
    let mut backoff = policy.backoff;
    let mut attempt = 0;
    loop {
        attempt += 1;
        match std::fs::read(path) {
            Ok(bytes) => return Ok(bytes),
            Err(e) if attempt < policy.attempts.max(1) && is_transient(e.kind()) => {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            Err(e) => return Err(e),
        }
    }
}

fn month_file_name(month: u32) -> String {
    format!("month_{month:04}.json")
}

fn write_month_checkpoint(
    dir: &Path,
    month: u32,
    model: &TwoTower,
    optimizer: &AdamState,
    stats: &TrainStats,
    lr_scale: f32,
) -> io::Result<String> {
    let file = month_file_name(month);
    let doc = Json::obj(vec![
        ("magic", Json::str(MONTH_MAGIC)),
        ("format_version", Json::int(MANIFEST_VERSION as usize)),
        ("month", Json::int(month as usize)),
        ("model", model_to_json_value(model)),
        ("optimizer", adam_state_to_json(optimizer)),
        ("stats", stats_to_json(stats)),
        ("lr_scale", Json::F32(lr_scale)),
    ]);
    write_atomic(&dir.join(&file), &doc.to_bytes())?;
    Ok(file)
}

/// A month checkpoint read back from disk, fully validated.
struct MonthCheckpointFile {
    model: TwoTower,
    optimizer: AdamState,
    stats: TrainStats,
    lr_scale: f32,
}

fn read_month_checkpoint(
    dir: &Path,
    record: &MonthRecord,
    policy: &RetryPolicy,
) -> io::Result<MonthCheckpointFile> {
    let bytes = read_with_retry(&dir.join(&record.file), policy)?;
    let doc = Json::parse(&bytes).map_err(|e| bad(e.to_string()))?;
    let magic = field(&doc, "magic")?
        .as_str()
        .ok_or_else(|| bad("month checkpoint magic is not a string"))?;
    if magic != MONTH_MAGIC {
        return Err(bad(format!("not a month checkpoint (magic `{magic}`)")));
    }
    let month = usize_field(&doc, "month")? as u32;
    if month != record.month {
        return Err(bad(format!(
            "month checkpoint {} holds month {month}, manifest says {}",
            record.file, record.month
        )));
    }
    // model_from_json_value runs the full v2 validation stack: magic,
    // architecture match, finiteness, value checksum
    let model = model_from_json_value(field(&doc, "model")?)?;
    let optimizer = adam_state_from_json(field(&doc, "optimizer")?)?;
    let stats = stats_from_json(field(&doc, "stats")?)?;
    let lr_scale = f32_field(&doc, "lr_scale")?;
    if !lr_scale.is_finite() || lr_scale <= 0.0 {
        return Err(bad(format!("month checkpoint lr_scale {lr_scale} is not usable")));
    }
    Ok(MonthCheckpointFile { model, optimizer, stats, lr_scale })
}

/// Loads and validates the manifest in `dir`, or `None` if the run is
/// fresh (no manifest file yet).
pub fn load_manifest(dir: &Path) -> io::Result<Option<RunManifest>> {
    let path = dir.join("manifest.json");
    if !path.exists() {
        return Ok(None);
    }
    let bytes = std::fs::read(&path)?;
    let doc = Json::parse(&bytes).map_err(|e| bad(e.to_string()))?;
    Ok(Some(manifest_from_json(&doc)?))
}

// ---------------------------------------------------------------------------
// the runner
// ---------------------------------------------------------------------------

/// The per-month shuffling seed: a pure function of `(run seed, month,
/// attempt)`, so a resumed run replays exactly the batch sequence the
/// uninterrupted run saw — and a rollback retry sees a *different* (but
/// still deterministic) shuffle.
fn month_seed(seed: u64, month: u32, attempt: u32) -> u64 {
    seed ^ (month as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (attempt as u64).wrapping_mul(0xd1b5_4a32_d192_ed03)
}

fn durable_counter(name: &'static str) {
    if obs::enabled() {
        obs::registry::counter(name).inc();
    }
}

/// Runs (or resumes) a durable incremental training over `split`.
///
/// `model` is the freshly initialized model used only when the run
/// directory holds no prior state; on resume the checkpointed model wins.
/// The returned [`DurableRun`] is byte-for-byte equivalent to what an
/// uninterrupted run would have produced.
pub fn train_durable(
    model: TwoTower,
    cfg: TrainConfig,
    durable: &DurableConfig,
    split: &TemporalSplit,
    marginals: &Marginals,
) -> Result<DurableRun, DurableError> {
    cfg.validate()?;
    std::fs::create_dir_all(&durable.run_dir)?;
    let base_lr = cfg.optimizer.lr;

    let mut manifest = match load_manifest(&durable.run_dir)? {
        Some(m) => {
            if m.seed != cfg.seed {
                return Err(DurableError::Io(bad(format!(
                    "run directory belongs to seed {:016x}, config has {:016x}",
                    m.seed, cfg.seed
                ))));
            }
            m
        }
        None => RunManifest { seed: cfg.seed, months: Vec::new() },
    };

    let resumed_after = manifest.months.last().map(|r| r.month);
    let mut lr_scale = 1.0f32;
    let mut trainer = match manifest.months.last() {
        Some(last) => {
            let cp = read_month_checkpoint(&durable.run_dir, last, &durable.retry)?;
            lr_scale = cp.lr_scale;
            let mut t = Trainer::try_new(cp.model, cfg.clone())?;
            t.import_optimizer(&cp.optimizer)?;
            t.restore_stats(cp.stats);
            t.set_lr(base_lr * lr_scale);
            durable_counter("unimatch_durable_months_resumed_total");
            t
        }
        None => Trainer::try_new(model, cfg.clone())?,
    };

    let mut rollbacks = 0u32;
    let months: Vec<u32> = split
        .train_months()
        .into_iter()
        .filter(|&m| resumed_after.is_none_or(|after| m > after))
        .collect();

    for month in months {
        let month_samples = split.train_month(month);
        let mut attempt = 0u32;
        loop {
            // snapshot the month's starting state so a dirty month can be
            // rolled back exactly
            let params_snapshot = trainer.model.params.clone();
            let opt_snapshot = trainer.export_optimizer();
            let stats_snapshot = *trainer.stats();

            trainer.reseed(month_seed(cfg.seed, month, attempt));
            // a fresh monitor per attempt: warmup and the EMA baseline
            // restart with the month, which also keeps a resumed run's
            // health state identical to an uninterrupted one's
            trainer.enable_health(durable.health);

            let losses =
                trainer.train_epochs(&month_samples, marginals, cfg.epochs_per_month)?;
            let report = trainer.health_report().unwrap_or_default();

            if report.is_clean() {
                let mean_loss =
                    losses.iter().copied().sum::<f32>() / losses.len().max(1) as f32;
                // kill window 1: the month is trained but nothing is
                // committed — resume retrains this month from the prior one
                PRE_COMMIT_FAULT.crash_point();
                let optimizer = trainer.export_optimizer();
                let file = write_month_checkpoint(
                    &durable.run_dir,
                    month,
                    &trainer.model,
                    &optimizer,
                    trainer.stats(),
                    lr_scale,
                )?;
                manifest.months.push(MonthRecord {
                    month,
                    file,
                    mean_loss,
                    lr_scale,
                    stats: *trainer.stats(),
                });
                write_atomic(
                    &durable.run_dir.join("manifest.json"),
                    &manifest_to_json(&manifest).to_bytes(),
                )?;
                // kill window 2: the month is fully committed — resume
                // starts at the next month
                MONTH_END_FAULT.crash_point();
                break;
            }

            // unhealthy month: roll back to the snapshot and retry with a
            // reduced learning rate
            if attempt >= durable.max_retries_per_month {
                return Err(DurableError::RetriesExhausted { month, retries: attempt });
            }
            trainer.model.params = params_snapshot;
            trainer.import_optimizer(&opt_snapshot)?;
            trainer.restore_stats(stats_snapshot);
            lr_scale *= durable.lr_backoff;
            trainer.set_lr(base_lr * lr_scale);
            rollbacks += 1;
            attempt += 1;
            durable_counter("unimatch_durable_rollbacks_total");
            durable_counter("unimatch_durable_lr_backoffs_total");
        }
    }

    Ok(DurableRun {
        stats: *trainer.stats(),
        model: trainer.model,
        manifest,
        resumed_after,
        rollbacks,
    })
}

impl crate::framework::UniMatch {
    /// [`crate::framework::UniMatch::fit`], made durable: training state
    /// is checkpointed per month under `run_dir`, so a killed process can
    /// call `fit_durable` again with the same arguments and continue from
    /// the last committed month — producing the same model an
    /// uninterrupted run would have.
    pub fn fit_durable(
        &self,
        log: unimatch_data::InteractionLog,
        durable: &DurableConfig,
    ) -> Result<crate::framework::FittedUniMatch, DurableError> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cfg = &self.config;
        cfg.parallelism.install_global();
        let prepared = PreparedData::from_log(log, cfg.max_seq_len);
        let model_cfg = unimatch_models::ModelConfig {
            num_items: prepared.num_items(),
            embed_dim: cfg.embed_dim,
            max_seq_len: cfg.max_seq_len,
            extractor: cfg.extractor,
            aggregator: cfg.aggregator,
            temperature: cfg.temperature,
            normalize: true,
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = TwoTower::new(model_cfg, &mut rng);
        let run = train_durable(
            model,
            self.train_config(),
            durable,
            &prepared.split,
            &prepared.marginals,
        )?;
        Ok(self.build_serving(run.model, &prepared))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::model_to_json;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU32, Ordering};
    use unimatch_data::windowing::{build_samples, WindowConfig};
    use unimatch_data::{temporal_split, DatasetProfile, Marginals};
    use unimatch_faults::{FaultKind, FaultPlan, FaultRule};
    use unimatch_losses::{BiasConfig, MultinomialLoss};
    use unimatch_models::ModelConfig;
    use unimatch_train::{AdamConfig, TrainLoss};

    fn unique_dir(name: &str) -> PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "unimatch_durable_{}_{}_{}",
            name,
            std::process::id(),
            n
        ));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn setup() -> (TwoTower, TrainConfig, TemporalSplit, Marginals) {
        let log = DatasetProfile::EComp.generate(0.1, 5).filter_min_interactions(2);
        let samples = build_samples(&log, &WindowConfig { max_seq_len: 8, min_history: 1 });
        let split = temporal_split(&samples, log.span_months());
        let marginals = Marginals::from_samples(&split.train, log.num_users(), log.num_items());
        let mut rng = StdRng::seed_from_u64(4);
        let model = TwoTower::new(
            ModelConfig::youtube_dnn_mean(log.num_items() as usize, 8, 0.2),
            &mut rng,
        );
        let cfg = TrainConfig {
            batch_size: 32,
            epochs_per_month: 1,
            max_seq_len: 8,
            optimizer: AdamConfig::with_lr(0.05),
            loss: TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
            seed: 5,
        };
        (model, cfg, split, marginals)
    }

    fn run_uninterrupted(dir: &Path) -> DurableRun {
        let (model, cfg, split, marginals) = setup();
        train_durable(model, cfg, &DurableConfig::new(dir), &split, &marginals)
            .expect("uninterrupted run")
    }

    #[test]
    fn fresh_run_commits_every_month() {
        let dir = unique_dir("fresh");
        let run = run_uninterrupted(&dir);
        let (_, _, split, _) = setup();
        assert_eq!(run.manifest.months.len(), split.train_months().len());
        assert!(run.resumed_after.is_none());
        assert_eq!(run.rollbacks, 0);
        for r in &run.manifest.months {
            assert!(dir.join(&r.file).exists(), "{} missing", r.file);
            assert!(r.mean_loss.is_finite());
        }
        // the manifest on disk round-trips to the in-memory one
        let on_disk = load_manifest(&dir).expect("read").expect("present");
        assert_eq!(on_disk.seed, run.manifest.seed);
        assert_eq!(on_disk.months.len(), run.manifest.months.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The central guarantee: kill the run at a crash seam, resume from
    /// the manifest, and the final model is byte-identical to an
    /// uninterrupted run (stats included).
    fn kill_and_resume_matches(seam: &'static str, skip: u64) {
        let _guard = crate::fault_test_lock();
        let baseline_dir = unique_dir("baseline");
        let baseline = run_uninterrupted(&baseline_dir);

        let dir = unique_dir("killed");
        let (model, cfg, split, marginals) = setup();
        unimatch_faults::set_plan(FaultPlan {
            seed: 1,
            rules: vec![FaultRule::new(seam, FaultKind::Crash)
                .with_max_fires(1)
                .with_skip_first(skip)],
        });
        let killed = catch_unwind(AssertUnwindSafe(|| {
            train_durable(model, cfg, &DurableConfig::new(&dir), &split, &marginals)
        }));
        unimatch_faults::clear();
        assert!(killed.is_err(), "the injected crash must kill the run");
        let partial = load_manifest(&dir).expect("read").expect("manifest survives the kill");
        assert!(
            partial.months.len() < split.train_months().len(),
            "the kill must leave the run incomplete"
        );

        // resume: a fresh process would do exactly this call
        let (model, cfg, split, marginals) = setup();
        let resumed =
            train_durable(model, cfg, &DurableConfig::new(&dir), &split, &marginals)
                .expect("resume");
        assert!(resumed.resumed_after.is_some(), "must pick up from the manifest");
        assert_eq!(
            model_to_json(&resumed.model),
            model_to_json(&baseline.model),
            "resumed parameters must match the uninterrupted run bit for bit"
        );
        assert_eq!(resumed.stats.steps, baseline.stats.steps);
        assert_eq!(resumed.stats.records_consumed, baseline.stats.records_consumed);
        assert_eq!(resumed.stats.loss_sum, baseline.stats.loss_sum);
        assert_eq!(resumed.manifest.months.len(), baseline.manifest.months.len());
        std::fs::remove_dir_all(&baseline_dir).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_between_months_resumes_equivalently() {
        // crash after the second month's manifest commit
        kill_and_resume_matches("durable.month_end", 1);
    }

    #[test]
    fn kill_within_a_month_resumes_equivalently() {
        // crash after the second month trained but before its checkpoint
        // was written: resume retrains that month from the first one
        kill_and_resume_matches("durable.pre_commit", 1);
    }

    #[test]
    fn injected_nan_rolls_back_and_completes_finite() {
        let _guard = crate::fault_test_lock();
        let dir = unique_dir("nan");
        let (model, cfg, split, marginals) = setup();
        // poison one training step in the first month; the health monitor
        // flags it, the month rolls back, and the LR-backed-off retry
        // (fault budget spent) trains clean
        unimatch_faults::set_plan(FaultPlan {
            seed: 3,
            rules: vec![FaultRule::new("train.step", FaultKind::BitFlip).with_max_fires(1)],
        });
        let run = train_durable(model, cfg, &DurableConfig::new(&dir), &split, &marginals)
            .expect("run absorbs the NaN");
        unimatch_faults::clear();
        assert!(run.rollbacks >= 1, "the poisoned month must roll back");
        assert!(
            run.model.params.global_norm().is_finite(),
            "final parameters must be finite"
        );
        assert!(run.manifest.months.iter().all(|r| r.mean_loss.is_finite()));
        let backed_off = run.manifest.months.iter().any(|r| r.lr_scale < 1.0);
        assert!(backed_off, "the LR backoff must be recorded in the manifest");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retries_exhausted_is_a_typed_error() {
        let _guard = crate::fault_test_lock();
        let dir = unique_dir("exhausted");
        let (model, cfg, split, marginals) = setup();
        // poison every step: no retry can ever train clean
        unimatch_faults::set_plan(FaultPlan {
            seed: 3,
            rules: vec![FaultRule::new("train.step", FaultKind::BitFlip)],
        });
        let durable = DurableConfig { max_retries_per_month: 1, ..DurableConfig::new(&dir) };
        let err = train_durable(model, cfg, &durable, &split, &marginals)
            .expect_err("unrecoverable month");
        unimatch_faults::clear();
        assert!(
            matches!(err, DurableError::RetriesExhausted { retries: 1, .. }),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_seed_is_rejected() {
        let dir = unique_dir("seed");
        let _ = run_uninterrupted(&dir);
        let (model, mut cfg, split, marginals) = setup();
        cfg.seed ^= 0xdead;
        let err = train_durable(model, cfg, &DurableConfig::new(&dir), &split, &marginals)
            .expect_err("wrong seed");
        assert!(err.to_string().contains("seed"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn completed_run_is_a_no_op_on_rerun() {
        let dir = unique_dir("noop");
        let first = run_uninterrupted(&dir);
        let (model, cfg, split, marginals) = setup();
        let again = train_durable(model, cfg, &DurableConfig::new(&dir), &split, &marginals)
            .expect("rerun");
        assert_eq!(model_to_json(&again.model), model_to_json(&first.model));
        assert_eq!(again.stats.steps, first.stats.steps);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adam_state_round_trips_exactly() {
        let (model, cfg, split, marginals) = setup();
        let mut trainer = Trainer::try_new(model, cfg).expect("trainer");
        trainer
            .train_epochs(&split.train_month(0), &marginals, 1)
            .expect("warm up some optimizer state");
        let state = trainer.export_optimizer();
        let restored = adam_state_from_json(&Json::parse(
            &adam_state_to_json(&state).to_bytes(),
        )
        .expect("parse"))
        .expect("decode");
        assert_eq!(state.t, restored.t);
        assert_eq!(state.dense.len(), restored.dense.len());
        for ((an, am, av), (bn, bm, bv)) in state.dense.iter().zip(restored.dense.iter()) {
            assert_eq!(an, bn);
            assert_eq!(am.data(), bm.data());
            assert_eq!(av.data(), bv.data());
        }
        assert_eq!(state.sparse, restored.sparse);
    }

    #[test]
    fn fit_durable_resumes_into_a_serving_model() {
        let _guard = crate::fault_test_lock();
        let log = DatasetProfile::EComp.generate(0.15, 21).filter_min_interactions(3);
        let cfg = crate::framework::UniMatchConfig {
            max_seq_len: 8,
            epochs_per_month: 1,
            ..Default::default()
        };
        let framework = crate::framework::UniMatch::new(cfg);
        let dir = unique_dir("fit");
        let durable = DurableConfig::new(&dir);

        // kill the very first fit after its first committed month
        unimatch_faults::set_plan(FaultPlan {
            seed: 8,
            rules: vec![FaultRule::new("durable.month_end", FaultKind::Crash).with_max_fires(1)],
        });
        let killed = catch_unwind(AssertUnwindSafe(|| {
            framework.fit_durable(log.clone(), &durable)
        }));
        unimatch_faults::clear();
        assert!(killed.is_err());

        let fitted = framework.fit_durable(log.clone(), &durable).expect("resume");
        let recs = fitted.recommend_items(&[1, 2, 3], 5);
        assert_eq!(recs.len(), 5);

        // and it matches the never-killed fit end to end
        let clean_dir = unique_dir("fit_clean");
        let clean = framework
            .fit_durable(log, &DurableConfig::new(&clean_dir))
            .expect("clean fit");
        assert_eq!(model_to_json(&fitted.model), model_to_json(&clean.model));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&clean_dir).ok();
    }
}
