//! The online-serving handle: an atomically hot-swappable fitted model.
//!
//! The paper's deployment (Sec. III-B3) retrains incrementally every month
//! and must roll the new checkpoint into the serving fleet without
//! dropping traffic. [`ModelHandle`] is the primitive that makes the swap
//! safe: the current [`ServingState`] (model + both ANN indexes + user
//! pool) lives behind an `RwLock<Arc<…>>`; readers clone the `Arc` and
//! answer any number of queries against that immutable snapshot, while a
//! reload builds the *next* state entirely outside the lock and swaps the
//! pointer in one short write section. In-flight requests keep the old
//! snapshot alive until they finish — a reload never invalidates work
//! already admitted.

use crate::framework::{FittedUniMatch, UniMatch};
use crate::persist::{load_checkpoint_with_format_and_retry, RetryPolicy};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use unimatch_ann::EmbeddingStore;
use unimatch_data::{InteractionLog, Marginals};
use unimatch_models::TwoTower;

/// One immutable serving snapshot: everything needed to answer queries.
pub struct ServingState {
    /// The fitted model with both serving indexes.
    pub fitted: FittedUniMatch,
    /// Monotonic version, starting at 1; each successful reload bumps it.
    pub version: u64,
    /// The checkpoint file this state was loaded from.
    pub checkpoint: PathBuf,
}

/// A hot-swappable handle to the current [`ServingState`].
///
/// The handle owns the interaction log used to rebuild the user pool and
/// indexes on reload (new checkpoints reuse the same serving log; new
/// *data* ships with the next full deployment).
pub struct ModelHandle {
    framework: UniMatch,
    log: InteractionLog,
    state: RwLock<Arc<ServingState>>,
    next_version: AtomicU64,
}

impl ModelHandle {
    /// Loads `checkpoint` and builds the initial serving state over `log`
    /// (already filtered / prepared to the caller's taste). The serving
    /// configuration's model-shaped fields (`embed_dim`, `max_seq_len`,
    /// extractor, aggregator) are taken from the checkpoint itself, so a
    /// handle can serve any architecture the trainer produced.
    pub fn from_checkpoint(
        framework: UniMatch,
        checkpoint: impl AsRef<Path>,
        log: InteractionLog,
    ) -> io::Result<ModelHandle> {
        let checkpoint = checkpoint.as_ref().to_path_buf();
        let (model, store, marginals) = load_checkpoint_with_format_and_retry(
            &checkpoint,
            framework.config.store,
            framework.config.mmap,
            &RetryPolicy::default(),
        )?;
        let fitted = build_fitted(&framework, &log, model, store, marginals, &checkpoint)?;
        Ok(ModelHandle {
            framework,
            log,
            state: RwLock::new(Arc::new(ServingState { fitted, version: 1, checkpoint })),
            next_version: AtomicU64::new(2),
        })
    }

    /// The current serving snapshot. Cheap (one `Arc` clone under a read
    /// lock); hold the returned `Arc` for the duration of a batch so every
    /// request in it is answered by one consistent model version.
    pub fn current(&self) -> Arc<ServingState> {
        self.state.read().expect("serving state lock poisoned").clone()
    }

    /// The version of the currently served snapshot.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Atomically swaps in a new checkpoint — `path`, or the currently
    /// served checkpoint file re-read when `None` (the trainer overwrote it
    /// in place via the atomic [`crate::persist::save_model`]).
    ///
    /// The new model is loaded, validated against the serving log, and its
    /// indexes are rebuilt entirely before the swap; concurrent readers are
    /// blocked only for the pointer exchange. Transient I/O failures during
    /// the load are retried with bounded backoff
    /// ([`crate::persist::load_model_with_retry`]); corrupt or missing
    /// checkpoints fail fast. On any error the previous state keeps serving
    /// untouched.
    pub fn reload(&self, path: Option<&Path>) -> io::Result<Arc<ServingState>> {
        let checkpoint = match path {
            Some(p) => p.to_path_buf(),
            None => self.current().checkpoint.clone(),
        };
        let (model, store, marginals) = load_checkpoint_with_format_and_retry(
            &checkpoint,
            self.framework.config.store,
            self.framework.config.mmap,
            &RetryPolicy::default(),
        )?;
        let fitted = build_fitted(&self.framework, &self.log, model, store, marginals, &checkpoint)?;
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(ServingState { fitted, version, checkpoint });
        *self.state.write().expect("serving state lock poisoned") = state.clone();
        Ok(state)
    }
}

/// Rebuilds the serving indexes around a freshly loaded model. The
/// framework configuration's model-shaped fields are overridden from the
/// checkpoint so any trained architecture can be served. The item store
/// decoded from the checkpoint's embedding section is indexed directly —
/// serving never re-runs item inference (and never touches the
/// checkpoint's `ParamSet` representation for retrieval).
fn build_fitted(
    framework: &UniMatch,
    log: &InteractionLog,
    model: TwoTower,
    item_store: Arc<EmbeddingStore>,
    marginals: Option<Marginals>,
    checkpoint: &Path,
) -> io::Result<FittedUniMatch> {
    if (log.num_items() as usize) > model.config().num_items {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint {} serves {} items but the log references {}",
                checkpoint.display(),
                model.config().num_items,
                log.num_items()
            ),
        ));
    }
    // The configured business rules must describe this checkpoint's item
    // vocabulary: a rule referencing an item the model cannot serve means
    // the checkpoint and the rules sidecar are out of sync, and silently
    // ignoring the rule would un-filter items an operator meant to block.
    // Failing here keeps the previous state serving untouched.
    if let Some(rules) = &framework.config.rerank.rules {
        if let Some(max) = rules.max_item_id() {
            if (max as usize) >= model.config().num_items {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "checkpoint {} serves {} items but the rerank rules reference item {}",
                        checkpoint.display(),
                        model.config().num_items,
                        max
                    ),
                ));
            }
        }
    }
    let mut framework = framework.clone();
    framework.config.embed_dim = model.config().embed_dim;
    framework.config.max_seq_len = model.config().max_seq_len;
    framework.config.extractor = model.config().extractor;
    framework.config.aggregator = model.config().aggregator;
    Ok(framework.serve_with_store_and_marginals(model, log.clone(), item_store, marginals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::save_model;
    use crate::UniMatchConfig;
    use unimatch_data::DatasetProfile;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("unimatch_serving_{}_{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    #[test]
    fn reload_swaps_versions_and_results() {
        let dir = tmp_dir("reload");
        let log = DatasetProfile::EComp.generate(0.12, 5).filter_min_interactions(3);
        let cfg = UniMatchConfig { max_seq_len: 8, epochs_per_month: 1, ..Default::default() };
        let a = UniMatch::new(cfg.clone()).fit(log.clone());
        let cfg_b = UniMatchConfig { seed: 99, ..cfg.clone() };
        let b = UniMatch::new(cfg_b).fit(log.clone());

        let path_a = dir.join("a.json");
        let path_b = dir.join("b.json");
        save_model(&a.model, &path_a).expect("save a");
        save_model(&b.model, &path_b).expect("save b");

        let handle =
            ModelHandle::from_checkpoint(UniMatch::new(cfg), &path_a, log).expect("load a");
        assert_eq!(handle.version(), 1);
        let before = handle.current();
        let recs_a = before.fitted.recommend_items(&[1, 2, 3], 5);
        assert_eq!(recs_a, a.recommend_items(&[1, 2, 3], 5));

        let after = handle.reload(Some(&path_b)).expect("reload b");
        assert_eq!(after.version, 2);
        assert_eq!(handle.version(), 2);
        // the pre-reload snapshot still answers consistently
        assert_eq!(before.fitted.recommend_items(&[1, 2, 3], 5), recs_a);
        // and the new snapshot serves the new model
        assert_eq!(
            handle.current().fitted.recommend_items(&[1, 2, 3], 5),
            b.recommend_items(&[1, 2, 3], 5)
        );

        // a missing file must not disturb the served state
        assert!(handle.reload(Some(Path::new("/nonexistent/x.json"))).is_err());
        assert_eq!(handle.version(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
