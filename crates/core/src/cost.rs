//! The cost model of Sec. IV-B5: how the framework's four choices compound
//! into the ≥ 94 % total-cost saving the paper reports.
//!
//! The paper's arithmetic, reproduced exactly:
//!
//! 1. **bbcNCE over BCE**: BCE needs 3–5× the epochs (Tab. VII) over 2×
//!    the records (1:1 negatives) — training cost ratio 1/10 to 1/5.
//! 2. **One model for IR + UT**: halves training, inference and
//!    maintenance versus the two-model status quo.
//! 3. **Incremental training**: 1 month of data from a checkpoint versus a
//!    12-month from-scratch retrain — 1/12.
//! 4. Training is ~90 % of the total, inference the rest.

/// Cost description of one training regime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Regime {
    /// Epochs per (re)training.
    pub epochs: f64,
    /// Records consumed per epoch relative to the positive count (BCE's
    /// 1:1 negatives ⇒ 2.0; multinomial ⇒ 1.0).
    pub record_factor: f64,
    /// Independent models to train/serve (IR-only + UT-only ⇒ 2).
    pub models: f64,
    /// Months of data consumed per retraining cycle.
    pub months_of_data: f64,
}

impl Regime {
    /// The status-quo regime the paper compares against: separate IR and UT
    /// BCE models retrained monthly from scratch over a year of data.
    pub fn status_quo(bce_epochs: f64) -> Self {
        Regime { epochs: bce_epochs, record_factor: 2.0, models: 2.0, months_of_data: 12.0 }
    }

    /// The UniMatch regime: one bbcNCE model incrementally trained on the
    /// latest month.
    pub fn unimatch(mult_epochs: f64) -> Self {
        Regime { epochs: mult_epochs, record_factor: 1.0, models: 1.0, months_of_data: 1.0 }
    }

    /// Relative training cost (product of the factors).
    pub fn training_cost(&self) -> f64 {
        self.epochs * self.record_factor * self.models * self.months_of_data
    }
}

/// The full cost comparison.
#[derive(Clone, Copy, Debug)]
pub struct CostComparison {
    /// Baseline regime.
    pub baseline: Regime,
    /// Proposed regime.
    pub proposed: Regime,
    /// Share of total cost that is training (paper: ~0.9).
    pub training_share: f64,
}

impl CostComparison {
    /// The paper's comparison for a dataset with the given Tab. VII epochs.
    pub fn paper(bce_epochs: f64, mult_epochs: f64) -> Self {
        CostComparison {
            baseline: Regime::status_quo(bce_epochs),
            proposed: Regime::unimatch(mult_epochs),
            training_share: 0.9,
        }
    }

    /// Training-cost ratio (proposed / baseline).
    pub fn training_ratio(&self) -> f64 {
        self.proposed.training_cost() / self.baseline.training_cost()
    }

    /// Inference-cost ratio: one model instead of `baseline.models`.
    pub fn inference_ratio(&self) -> f64 {
        self.proposed.models / self.baseline.models
    }

    /// Total-cost ratio: training share × training ratio + inference share
    /// × inference ratio.
    pub fn total_ratio(&self) -> f64 {
        self.training_share * self.training_ratio()
            + (1.0 - self.training_share) * self.inference_ratio()
    }

    /// Fraction of total cost saved.
    pub fn total_saving(&self) -> f64 {
        1.0 - self.total_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_books_numbers() {
        // Books: BCE 8 epochs vs multinomial 3 epochs (Tab. VII).
        let c = CostComparison::paper(8.0, 3.0);
        // training: (3·1·1·1)/(8·2·2·12) = 3/384
        assert!((c.training_ratio() - 3.0 / 384.0).abs() < 1e-12);
        assert!((c.inference_ratio() - 0.5).abs() < 1e-12);
        // total saving must exceed the paper's 94 %
        assert!(c.total_saving() > 0.94, "saving {}", c.total_saving());
    }

    #[test]
    fn every_profile_cell_saves_at_least_94_percent() {
        // Tab. VII epoch pairs: (8,3), (6,2), (6,2), (10,2)
        for (b, m) in [(8.0, 3.0), (6.0, 2.0), (6.0, 2.0), (10.0, 2.0)] {
            let c = CostComparison::paper(b, m);
            assert!(c.total_saving() > 0.94, "({b},{m}): {}", c.total_saving());
        }
    }

    #[test]
    fn loss_change_alone_gives_five_to_ten_x() {
        // isolating choice (1): same months, same model count
        for (b, m) in [(8.0, 3.0), (10.0, 2.0)] {
            let lone = Regime { epochs: m, record_factor: 1.0, models: 1.0, months_of_data: 1.0 }
                .training_cost()
                / Regime { epochs: b, record_factor: 2.0, models: 1.0, months_of_data: 1.0 }
                    .training_cost();
            assert!((0.08..=0.22).contains(&lone), "ratio {lone}");
        }
    }

    #[test]
    fn training_cost_is_multiplicative() {
        let r = Regime { epochs: 2.0, record_factor: 2.0, models: 2.0, months_of_data: 2.0 };
        assert_eq!(r.training_cost(), 16.0);
    }
}
