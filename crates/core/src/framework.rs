//! The user-facing UniMatch framework: one model, both marketing tasks.
//!
//! ```text
//! raw logs ──► prepare ──► incremental bbcNCE training ──► embeddings
//!                                                      ├─► item ANN index ──► recommend_items (IR)
//!                                                      └─► user ANN index ──► target_users    (UT)
//! ```

use crate::evaluate::embed_histories;
use crate::hyper::{Hyperparams, Pathway};
use crate::pipeline::{MatchPipeline, QuerySource};
use crate::prepare::PreparedData;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use unimatch_ann::{
    BruteForceIndex, EmbeddingStore, Hit, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Retriever,
    RowFormat, ShardPolicy, ShardedRetriever, StoreBacking,
};
use unimatch_data::{InteractionLog, Marginals};
use unimatch_eval::UserPool;
use unimatch_rerank::{BusinessRules, RerankChain};
use unimatch_losses::{BiasConfig, MultinomialLoss};
use unimatch_models::{Aggregator, ContextExtractor, ModelConfig, TwoTower};
use unimatch_parallel::Parallelism;
use unimatch_train::{AdamConfig, TrainConfig, TrainError, TrainLoss, Trainer};

pub use crate::pipeline::{CheckedBatch, DegradeOptions};

/// Framework configuration. Defaults follow the paper's production choice:
/// Youtube-DNN + mean pooling trained with bbcNCE, d = 16.
#[derive(Clone, Debug)]
pub struct UniMatchConfig {
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Softmax temperature τ.
    pub temperature: f32,
    /// Batch size.
    pub batch_size: usize,
    /// Epochs per incremental month.
    pub epochs_per_month: usize,
    /// History truncation length.
    pub max_seq_len: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Loss (defaults to bbcNCE — the whole point of the framework).
    pub loss: TrainLoss,
    /// Context extractor.
    pub extractor: ContextExtractor,
    /// Aggregator.
    pub aggregator: Aggregator,
    /// Master seed.
    pub seed: u64,
    /// Thread configuration for the compute kernels, installed globally at
    /// the start of every `fit`/`resume`/`serve`.
    /// [`Parallelism::sequential`] reproduces the single-threaded behavior
    /// exactly; the default auto-detects the core count.
    pub parallelism: Parallelism,
    /// Which retrieval backend serves both towers' searches.
    pub retriever: RetrieverKind,
    /// Row-range shard count for both towers' retrieval indexes. `1`
    /// builds one index per tower (the historical layout); `N > 1` wraps
    /// each tower in a [`ShardedRetriever`] — N backend indexes over
    /// zero-copy views of the tower's arena, searched in parallel and
    /// merged under the canonical top-k order. Exact retrieval results
    /// are bitwise independent of this setting; it is a
    /// throughput/latency knob (see docs/OPERATIONS.md).
    pub shards: usize,
    /// Failure-isolation policy for sharded fan-outs (per-shard deadline
    /// plus `min_shards` quorum; see [`ShardPolicy`]). The default is
    /// strict — no deadline, every shard must answer — which reproduces
    /// the historical behavior exactly. Ignored when `shards == 1`.
    pub shard_policy: ShardPolicy,
    /// Post-retrieval re-ranking pipeline (see [`unimatch_rerank`]).
    /// The default (empty spec, no rules) is the identity chain, which
    /// is bitwise invisible at every call site.
    pub rerank: RerankConfig,
    /// Row format of both towers' serving stores. [`RowFormat::F32`]
    /// (the default) is the bit-exact reference; `F16`/`I8` quantize the
    /// embedding arenas after training — 2×/4× smaller tables scored
    /// through the fused dequant-dot kernel, recall-gated by the quant
    /// differential suite (see docs/OPERATIONS.md for the trade-offs).
    pub store: RowFormat,
    /// Memory-map the persisted item table instead of copying it into an
    /// owned arena. Only the load/serve paths consult this (the fitting
    /// path always trains in owned memory); it never changes checkpoint
    /// bytes or scores — mmap-backed serving is pinned bitwise-identical
    /// to owned-arena serving.
    pub mmap: bool,
}

/// Configuration of the post-retrieval re-ranking pipeline.
#[derive(Clone, Debug, Default)]
pub struct RerankConfig {
    /// Chain spec (e.g. `debias@0.5,mmr@0.3,cap:category=3,explore@0.1`;
    /// see the grammar in `unimatch-rerank`). Must parse — validate with
    /// [`RerankChain::parse`] before constructing a framework; an
    /// invalid spec panics when the serving indexes are built. Empty =
    /// identity chain.
    pub spec: String,
    /// Business rules (allow/deny sets, category assignments) for the
    /// `filter`/`cap` stages, pre-loaded by the caller — building the
    /// serving indexes never touches the filesystem.
    pub rules: Option<Arc<BusinessRules>>,
}

/// The retrieval backend built over each tower's embedding store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RetrieverKind {
    /// Exact blocked scan (`BruteForceIndex`) — bit-reproducible scores,
    /// the reference every approximate backend is measured against.
    Exact,
    /// HNSW graph (the paper's production choice for online serving).
    #[default]
    Hnsw,
    /// IVF inverted lists.
    Ivf,
}

impl RetrieverKind {
    /// Parses a CLI/config name (`exact`, `hnsw`, `ivf`).
    pub fn parse(name: &str) -> Option<RetrieverKind> {
        match name {
            "exact" | "bruteforce" => Some(RetrieverKind::Exact),
            "hnsw" => Some(RetrieverKind::Hnsw),
            "ivf" => Some(RetrieverKind::Ivf),
            _ => None,
        }
    }

    /// The stable backend name ([`Retriever::backend`] of the index this
    /// kind builds).
    pub fn name(self) -> &'static str {
        match self {
            RetrieverKind::Exact => "bruteforce",
            RetrieverKind::Hnsw => "hnsw",
            RetrieverKind::Ivf => "ivf",
        }
    }

    /// Builds an index of this kind over a shared store, wrapped in a
    /// [`ShardedRetriever`] when `shards > 1` (one backend index per
    /// contiguous row range, each over a zero-copy view of `store`).
    fn build(
        self,
        store: Arc<EmbeddingStore>,
        shards: usize,
        policy: ShardPolicy,
        rng: &mut StdRng,
    ) -> Box<dyn Retriever> {
        if shards > 1 {
            Box::new(ShardedRetriever::build_with_policy(&store, shards, policy, |view| {
                self.build_one(view, rng)
            }))
        } else {
            self.build_one(store, rng)
        }
    }

    /// Builds one unsharded index of this kind over a shared store.
    fn build_one(self, store: Arc<EmbeddingStore>, rng: &mut StdRng) -> Box<dyn Retriever> {
        match self {
            RetrieverKind::Exact => Box::new(BruteForceIndex::over(store)),
            RetrieverKind::Hnsw => {
                Box::new(HnswIndex::build_over(store, HnswConfig::default(), rng))
            }
            RetrieverKind::Ivf => Box::new(IvfIndex::build_over(store, IvfConfig::default(), rng)),
        }
    }
}

impl Default for UniMatchConfig {
    fn default() -> Self {
        UniMatchConfig {
            embed_dim: 16,
            temperature: 0.15,
            batch_size: 64,
            epochs_per_month: 2,
            max_seq_len: 20,
            lr: 0.01,
            loss: TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
            extractor: ContextExtractor::YoutubeDnn,
            aggregator: Aggregator::Mean,
            seed: 42,
            parallelism: Parallelism::auto(),
            retriever: RetrieverKind::default(),
            shards: 1,
            shard_policy: ShardPolicy::default(),
            rerank: RerankConfig::default(),
            store: RowFormat::F32,
            mmap: false,
        }
    }
}

impl UniMatchConfig {
    /// Injects a tuned hyperparameter cell (e.g. from Tab. VII or a grid
    /// search).
    pub fn with_hyperparams(mut self, hp: Hyperparams) -> Self {
        self.batch_size = hp.batch_size;
        self.temperature = hp.temperature;
        self.epochs_per_month = hp.epochs;
        self.lr = hp.lr;
        self
    }

    /// The pathway implied by the configured loss.
    pub fn pathway(&self) -> Pathway {
        match self.loss {
            TrainLoss::Bce(_) => Pathway::Bernoulli,
            TrainLoss::Multinomial(_) => Pathway::Multinomial,
        }
    }
}

/// A trained UniMatch deployment: the model, both towers' embedding
/// stores, and a retrieval index over each store.
pub struct FittedUniMatch {
    /// The trained model.
    pub model: TwoTower,
    /// One pseudo-user per distinct user, aligned with `user_index` rows.
    pub user_pool: UserPool,
    /// The item-tower embedding arena (row = item id).
    item_store: Arc<EmbeddingStore>,
    /// The user-tower embedding arena (row = pool index, id = user id).
    user_store: Arc<EmbeddingStore>,
    /// Retrieval index over item embeddings (serves IR).
    item_index: Box<dyn Retriever>,
    /// Retrieval index over pool-user embeddings (serves UT).
    user_index: Box<dyn Retriever>,
    max_seq_len: usize,
    /// Post-retrieval re-ranking chain, applied to every search result
    /// before it leaves this struct. Identity unless configured.
    rerank: RerankChain,
    /// Business rules for the chain's filter/cap stages (item side only).
    rerank_rules: Option<Arc<BusinessRules>>,
    /// Training marginals — from the prepared data, or overridden by the
    /// checkpoint's persisted section on the serving path.
    marginals: Arc<Marginals>,
    /// `log p̂(i)` aligned with item-store rows (row = item id).
    item_log_p: Vec<f32>,
    /// `log p̂(u)` aligned with user-store rows (row = pool index).
    user_log_p: Vec<f32>,
    /// Seed component of the deterministic exploration stream.
    rerank_seed: u64,
}

/// The framework: configure once, [`UniMatch::fit`] per merchant.
#[derive(Clone, Debug, Default)]
pub struct UniMatch {
    /// Configuration.
    pub config: UniMatchConfig,
}

impl UniMatch {
    /// A framework with the default (paper production) configuration.
    pub fn new(config: UniMatchConfig) -> Self {
        UniMatch { config }
    }

    /// Trains on a merchant's interaction log and builds both serving
    /// indexes. One `fit` serves IR *and* UT — the paper's cost story.
    pub fn fit(&self, log: InteractionLog) -> FittedUniMatch {
        let cfg = &self.config;
        let prepared = PreparedData::from_log(log, cfg.max_seq_len);
        let model_cfg = ModelConfig {
            num_items: prepared.num_items(),
            embed_dim: cfg.embed_dim,
            max_seq_len: cfg.max_seq_len,
            extractor: cfg.extractor,
            aggregator: cfg.aggregator,
            temperature: cfg.temperature,
            normalize: true,
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = TwoTower::new(model_cfg, &mut rng);
        self.fit_continue(model, prepared, None, None)
    }

    /// The production monthly update: resumes training from last cycle's
    /// model, consuming only the months strictly after `trained_through`,
    /// and rebuilds the serving indexes. One month of data from a
    /// checkpoint instead of a yearly from-scratch retrain — the 1/12
    /// factor of Sec. IV-B5.
    ///
    /// The log must use the same dense item universe the model was trained
    /// on (new items require a fresh `fit`).
    pub fn resume(
        &self,
        model: TwoTower,
        log: InteractionLog,
        trained_through: u32,
    ) -> FittedUniMatch {
        let cfg = &self.config;
        assert!(
            (log.num_items() as usize) <= model.config().num_items,
            "log contains items outside the model's vocabulary; refit instead"
        );
        let prepared = PreparedData::from_log(log, cfg.max_seq_len);
        self.fit_continue(model, prepared, Some(trained_through), None)
    }

    /// Builds the serving indexes around an existing model WITHOUT any
    /// training — the CLI / serving-only path (e.g. reloading a persisted
    /// checkpoint to answer queries).
    pub fn serve(&self, model: TwoTower, log: InteractionLog) -> FittedUniMatch {
        let prepared = PreparedData::from_log(log, self.config.max_seq_len);
        self.fit_continue(model, prepared, Some(u32::MAX), None)
    }

    /// [`UniMatch::serve`], but reusing an item-embedding store already
    /// materialized elsewhere — the checkpoint-direct path: the store
    /// decoded straight out of a v2 checkpoint's embedding section is
    /// indexed as-is, with no re-inference over the item tower.
    ///
    /// The store must hold this model's normalized item embeddings
    /// (`rows == num_items`, `dim == embed_dim`); the loader guarantees
    /// that for stores it returns alongside the model.
    pub fn serve_with_store(
        &self,
        model: TwoTower,
        log: InteractionLog,
        item_store: Arc<EmbeddingStore>,
    ) -> FittedUniMatch {
        self.serve_with_store_and_marginals(model, log, item_store, None)
    }

    /// [`UniMatch::serve_with_store`] with the checkpoint's persisted
    /// marginals (when it carries the optional section) overriding the
    /// ones recomputed from the serving log — so the debias stage sees
    /// exactly the training-time `p̂(i)`/`p̂(u)` tables.
    pub fn serve_with_store_and_marginals(
        &self,
        model: TwoTower,
        log: InteractionLog,
        item_store: Arc<EmbeddingStore>,
        marginals: Option<Marginals>,
    ) -> FittedUniMatch {
        let mut prepared = PreparedData::from_log(log, self.config.max_seq_len);
        if let Some(m) = marginals {
            prepared.marginals = m;
        }
        self.fit_continue(model, prepared, Some(u32::MAX), Some(item_store))
    }

    fn fit_continue(
        &self,
        model: TwoTower,
        prepared: PreparedData,
        resume_after: Option<u32>,
        item_store: Option<Arc<EmbeddingStore>>,
    ) -> FittedUniMatch {
        self.try_fit_continue_with(model, prepared, resume_after, item_store)
            .unwrap_or_else(|e| panic!("UniMatch training failed: {e}"))
    }

    /// The fallible core of `fit`/`resume`/`serve`: a bad training config
    /// surfaces as a [`TrainError`] before the first step. The durable
    /// runner ([`crate::durable`]) shares [`UniMatch::train_config`] and
    /// [`UniMatch::build_serving`] with this path.
    fn try_fit_continue_with(
        &self,
        model: TwoTower,
        prepared: PreparedData,
        resume_after: Option<u32>,
        item_store: Option<Arc<EmbeddingStore>>,
    ) -> Result<FittedUniMatch, TrainError> {
        let cfg = &self.config;
        cfg.parallelism.install_global();
        let mut trainer = Trainer::try_new(model, self.train_config())?;
        trainer.train_incremental_from(&prepared.split, &prepared.marginals, resume_after)?;
        Ok(self.build_serving_with(trainer.model, &prepared, item_store))
    }

    /// The [`TrainConfig`] this framework configuration implies.
    pub(crate) fn train_config(&self) -> TrainConfig {
        let cfg = &self.config;
        TrainConfig {
            batch_size: cfg.batch_size,
            epochs_per_month: cfg.epochs_per_month,
            max_seq_len: cfg.max_seq_len,
            optimizer: AdamConfig::with_lr(cfg.lr),
            loss: cfg.loss,
            seed: cfg.seed ^ 0x7ea1,
        }
    }

    /// Builds the serving stores and indexes over both towers around a
    /// trained model.
    pub(crate) fn build_serving(&self, model: TwoTower, prepared: &PreparedData) -> FittedUniMatch {
        self.build_serving_with(model, prepared, None)
    }

    /// [`UniMatch::build_serving`], optionally reusing a pre-built item
    /// store (the checkpoint-direct load path) instead of re-running item
    /// inference. A supplied store must match the model's item count and
    /// embedding dimension.
    pub(crate) fn build_serving_with(
        &self,
        model: TwoTower,
        prepared: &PreparedData,
        item_store: Option<Arc<EmbeddingStore>>,
    ) -> FittedUniMatch {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x1d);
        let item_store = match item_store {
            Some(store) => {
                assert_eq!(store.dim(), cfg.embed_dim, "item store dim mismatch");
                assert_eq!(
                    store.rows(),
                    model.config().num_items,
                    "item store row count mismatch"
                );
                store
            }
            None => {
                let items = model.infer_items();
                Arc::new(EmbeddingStore::from_rows(items.data(), cfg.embed_dim))
            }
        };
        // Requantize only on a format mismatch: a store already delivered
        // in the configured format (e.g. mmap'd straight out of a sidecar
        // table) is indexed as-is, keeping checkpoint→serve zero-copy.
        let item_store = if item_store.format() == cfg.store {
            item_store
        } else {
            Arc::new(item_store.quantize(cfg.store))
        };
        let item_index =
            cfg.retriever.build(item_store.clone(), cfg.shards, cfg.shard_policy, &mut rng);
        let user_pool = UserPool::build(&prepared.split, cfg.max_seq_len);
        let histories: Vec<&[u32]> = user_pool.histories().iter().map(|h| h.as_slice()).collect();
        let user_embeddings = embed_histories(&model, &histories, cfg.max_seq_len);
        let user_store = EmbeddingStore::with_ids(
            &user_embeddings,
            cfg.embed_dim,
            user_pool.users().to_vec(),
        );
        let user_store = Arc::new(if cfg.store == RowFormat::F32 {
            user_store
        } else {
            user_store.quantize(cfg.store)
        });
        let user_index =
            cfg.retriever.build(user_store.clone(), cfg.shards, cfg.shard_policy, &mut rng);

        let rerank = RerankChain::parse(&cfg.rerank.spec)
            .unwrap_or_else(|e| panic!("invalid rerank spec {:?}: {e}", cfg.rerank.spec));
        let marginals = Arc::new(prepared.marginals.clone());
        let item_log_p: Vec<f32> =
            (0..item_store.rows()).map(|r| marginals.log_pi(r as u32)).collect();
        let user_log_p: Vec<f32> =
            user_pool.users().iter().map(|&u| marginals.log_pu(u)).collect();

        FittedUniMatch {
            model,
            user_pool,
            item_store,
            user_store,
            item_index,
            user_index,
            max_seq_len: cfg.max_seq_len,
            rerank,
            rerank_rules: cfg.rerank.rules.clone(),
            marginals,
            item_log_p,
            user_log_p,
            rerank_seed: cfg.seed,
        }
    }
}

impl FittedUniMatch {
    /// The item-tower (IR) view of the canonical query pipeline: embeds
    /// histories through the user tower, retrieves from the item index,
    /// re-ranks with the configured chain over the item store's
    /// marginals and business rules. Every `recommend_*` method below is
    /// a thin wrapper over this object.
    pub fn item_pipeline(&self) -> MatchPipeline<'_> {
        MatchPipeline::over(self.item_index.as_ref(), &self.item_store, &self.rerank)
            .with_source(QuerySource::Tower {
                model: &self.model,
                max_seq_len: self.max_seq_len,
            })
            .with_marginals(&self.item_log_p)
            .with_rules(self.rerank_rules.as_deref())
            .with_seed(self.rerank_seed)
    }

    /// The user-tower (UT) view of the canonical query pipeline: gathers
    /// query rows from the item store, retrieves from the user index,
    /// re-ranks over the user store's marginals (business rules describe
    /// items, so UT runs without them), and translates pool rows to user
    /// ids. Every `target_*` method below is a thin wrapper over this
    /// object.
    pub fn user_pipeline(&self) -> MatchPipeline<'_> {
        MatchPipeline::over(self.user_index.as_ref(), &self.user_store, &self.rerank)
            .with_source(QuerySource::Rows(&self.item_store))
            .with_marginals(&self.user_log_p)
            .with_external_ids(self.user_pool.users())
            .with_seed(self.rerank_seed)
    }

    /// IR: top-k items for a user's purchase history.
    pub fn recommend_items(&self, history: &[u32], k: usize) -> Vec<Hit> {
        assert!(!history.is_empty(), "recommend_items needs a non-empty history");
        let pipeline = self.item_pipeline();
        let query = pipeline.embed_one(history);
        pipeline.run_one(&query, k)
    }

    /// UT: top-k `(user_id, score)` targets for an item. The query row
    /// comes straight from the item store — no per-call re-inference over
    /// the item tower.
    pub fn target_users(&self, item: u32, k: usize) -> Vec<(u32, f32)> {
        self.target_users_by_embedding(&self.item_store.decode_row(item as usize), k)
    }

    /// UT against an arbitrary query embedding (e.g. a bundle blend built
    /// by [`crate::audience`]). Hit rows translate to user ids through the
    /// user store's id mapping, after the re-ranking chain has run over
    /// the raw pool rows.
    pub fn target_users_by_embedding(&self, query: &[f32], k: usize) -> Vec<(u32, f32)> {
        let pipeline = self.user_pipeline();
        let hits = pipeline.run_one(query, k);
        pipeline.translate(hits)
    }

    /// Batched IR: top-k items for each history, in input order.
    ///
    /// Embeds the histories in parallel chunks and answers all queries
    /// through [`Retriever::search_batch`]; results are identical to
    /// calling [`FittedUniMatch::recommend_items`] per history.
    pub fn recommend_items_batch(&self, histories: &[&[u32]], k: usize) -> Vec<Vec<Hit>> {
        assert!(
            histories.iter().all(|h| !h.is_empty()),
            "recommend_items_batch needs non-empty histories"
        );
        let queries = embed_histories(&self.model, histories, self.max_seq_len);
        self.recommend_by_embeddings(&queries, k)
    }

    /// Batched UT: top-k `(user_id, score)` targets for each item, in input
    /// order. Query rows are gathered from the item store (no re-inference)
    /// and answered through one [`Retriever::search_batch`] call; results
    /// are identical to calling [`FittedUniMatch::target_users`] per item.
    pub fn target_users_batch(&self, items: &[u32], k: usize) -> Vec<Vec<(u32, f32)>> {
        let pipeline = self.user_pipeline();
        let queries = pipeline.gather(items);
        pipeline
            .run(&queries, k)
            .into_iter()
            .map(|hits| pipeline.translate(hits))
            .collect()
    }

    /// The normalized user embedding for an arbitrary history.
    pub fn user_embedding(&self, history: &[u32]) -> Vec<f32> {
        self.item_pipeline().embed_one(history)
    }

    /// Normalized user embeddings for a batch of histories, flattened in
    /// input order (`histories.len() × embed_dim`). The batched forward
    /// pass produces the same values as [`FittedUniMatch::user_embedding`]
    /// per history, so callers (e.g. the serving layer's embedding cache)
    /// can mix single and batched embedding lookups freely.
    pub fn embed_users(&self, histories: &[&[u32]]) -> Vec<f32> {
        embed_histories(&self.model, histories, self.max_seq_len)
    }

    /// Batched IR against precomputed user embeddings: `queries` holds
    /// `n × embed_dim` floats, one row per query, and the result is one
    /// top-k hit list per row in input order. Combined with
    /// [`FittedUniMatch::embed_users`], this splits
    /// [`FittedUniMatch::recommend_items_batch`] into its two halves so a
    /// serving layer can cache the (expensive) embedding half per user
    /// while always answering the search half fresh.
    pub fn recommend_by_embeddings(&self, queries: &[f32], k: usize) -> Vec<Vec<Hit>> {
        self.item_pipeline().run(queries, k)
    }

    /// Fallible, degradable form of
    /// [`FittedUniMatch::recommend_by_embeddings`]: the retrieval fan-out
    /// runs under shard failure isolation (see
    /// [`Retriever::search_batch_checked`]) and the returned
    /// [`unimatch_ann::ShardHealth`] reports any dropped shards; `degrade` applies the
    /// brownout ladder's quality reductions. With
    /// [`DegradeOptions::NONE`] and a healthy fan-out the hit lists are
    /// bitwise identical to the unchecked call.
    pub fn recommend_by_embeddings_checked(
        &self,
        queries: &[f32],
        k: usize,
        degrade: DegradeOptions,
    ) -> CheckedBatch<Hit> {
        self.item_pipeline().run_checked(queries, k, degrade)
    }

    /// Fallible, degradable form of [`FittedUniMatch::target_users_batch`];
    /// same contract as [`FittedUniMatch::recommend_by_embeddings_checked`].
    pub fn target_users_batch_checked(
        &self,
        items: &[u32],
        k: usize,
        degrade: DegradeOptions,
    ) -> CheckedBatch<(u32, f32)> {
        let pipeline = self.user_pipeline();
        let queries = pipeline.gather(items);
        let (lists, health) = pipeline.run_checked(&queries, k, degrade)?;
        let translated = lists.into_iter().map(|hits| pipeline.translate(hits)).collect();
        Ok((translated, health))
    }

    /// Whether `degrade` can change response *content* for this
    /// deployment — true when it shrinks a non-identity chain's
    /// over-fetch or skips a stage the chain actually runs. Quorum
    /// relaxation alone never changes bytes on a healthy fan-out, so it
    /// does not count; a fan-out that actually lost shards is flagged
    /// through [`unimatch_ann::ShardHealth`] instead.
    pub fn degrade_affects_content(&self, degrade: DegradeOptions) -> bool {
        (degrade.shrink_overfetch && !self.rerank.is_identity())
            || self.rerank.skip_affects(degrade.stage_skip())
    }

    /// The history truncation length the model was fitted with. Queries
    /// longer than this are truncated to the most recent
    /// `max_seq_len` events by the embedding batcher, exactly as during
    /// training.
    pub fn max_seq_len(&self) -> usize {
        self.max_seq_len
    }

    /// Number of indexed items.
    pub fn num_items(&self) -> usize {
        self.item_index.len()
    }

    /// Number of pool users.
    pub fn num_pool_users(&self) -> usize {
        self.user_index.len()
    }

    /// The item-tower embedding arena (row = item id, normalized exactly
    /// as `TwoTower::infer_items` would produce).
    pub fn item_store(&self) -> &Arc<EmbeddingStore> {
        &self.item_store
    }

    /// The user-tower embedding arena (row = pool index, id = user id).
    pub fn user_store(&self) -> &Arc<EmbeddingStore> {
        &self.user_store
    }

    /// Canonical spec of the configured re-ranking chain (`""` for the
    /// identity chain).
    pub fn rerank_spec(&self) -> &str {
        self.rerank.spec()
    }

    /// The training marginals this deployment serves with — persisted
    /// alongside the model by `fit`, re-attached from the checkpoint's
    /// optional section on the serving path.
    pub fn marginals(&self) -> &Marginals {
        &self.marginals
    }

    /// Backend name of the serving retrieval indexes
    /// (`"bruteforce"` / `"hnsw"` / `"ivf"`).
    pub fn retriever_backend(&self) -> &'static str {
        self.item_index.backend()
    }

    /// Shard fan-out of the serving retrieval indexes (1 = unsharded).
    pub fn retriever_shards(&self) -> usize {
        self.item_index.shards()
    }

    /// Row format of the serving embedding stores (`f32`/`f16`/`i8`).
    pub fn store_format(&self) -> RowFormat {
        self.item_store.format()
    }

    /// Backing of the item-tower arena: [`StoreBacking::Mmap`] when the
    /// table was memory-mapped from a persisted sidecar, otherwise
    /// [`StoreBacking::Owned`].
    pub fn store_backing(&self) -> StoreBacking {
        self.item_store.backing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimatch_data::DatasetProfile;

    fn fitted() -> FittedUniMatch {
        let log = DatasetProfile::EComp.generate(0.15, 21).filter_min_interactions(3);
        let cfg = UniMatchConfig { max_seq_len: 8, epochs_per_month: 1, ..Default::default() };
        UniMatch::new(cfg).fit(log)
    }

    #[test]
    fn fit_serves_both_tasks() {
        let f = fitted();
        assert!(f.num_items() > 10);
        assert!(f.num_pool_users() > 50);

        let recs = f.recommend_items(&[1, 2, 3], 5);
        assert_eq!(recs.len(), 5);
        assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
        assert!(recs.iter().all(|h| (h.id as usize) < f.num_items()));

        let targets = f.target_users(recs[0].id, 5);
        assert_eq!(targets.len(), 5);
        assert!(targets.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn split_embed_and_search_matches_direct_calls() {
        let f = fitted();
        let hists: Vec<&[u32]> = vec![&[1, 2, 3], &[4, 5], &[2], &[7, 1]];
        let direct: Vec<_> = hists.iter().map(|h| f.recommend_items(h, 4)).collect();
        let batch = f.recommend_items_batch(&hists, 4);
        let split = f.recommend_by_embeddings(&f.embed_users(&hists), 4);
        assert_eq!(direct, batch);
        assert_eq!(direct, split);
    }

    #[test]
    fn user_embedding_is_unit_norm() {
        let f = fitted();
        let e = f.user_embedding(&[4, 5]);
        let n: f32 = e.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "non-empty history")]
    fn empty_history_rejected() {
        fitted().recommend_items(&[], 3);
    }

    #[test]
    fn identity_chain_is_bitwise_invisible() {
        let f = fitted();
        assert_eq!(f.rerank_spec(), "");
        let hists: Vec<&[u32]> = vec![&[1, 2, 3], &[4, 5]];
        let queries = f.embed_users(&hists);
        // the public APIs and the raw index search must agree byte for byte
        let raw = f.item_pipeline().run_raw(&queries, 5);
        assert_eq!(f.recommend_by_embeddings(&queries, 5), raw);
        assert_eq!(f.recommend_items(&[1, 2, 3], 5), raw[0]);
    }

    #[test]
    fn rerank_chain_reshapes_results_deterministically() {
        let log = DatasetProfile::EComp.generate(0.15, 21).filter_min_interactions(3);
        let cfg = UniMatchConfig {
            max_seq_len: 8,
            epochs_per_month: 1,
            retriever: RetrieverKind::Exact,
            rerank: RerankConfig {
                spec: "debias@2,mmr@0.3,explore@0.2".to_string(),
                rules: None,
            },
            ..Default::default()
        };
        let f = UniMatch::new(cfg.clone()).fit(log.clone());
        assert_eq!(f.rerank_spec(), "debias@2,mmr@0.3,explore@0.2");

        let a = f.recommend_items(&[1, 2, 3], 5);
        let b = f.recommend_items(&[1, 2, 3], 5);
        assert_eq!(a.len(), 5);
        assert_eq!(a, b, "a fixed seed pins the chain byte for byte");
        // batch answers match the direct path exactly
        let hists: Vec<&[u32]> = vec![&[1, 2, 3], &[4, 5]];
        let batch = f.recommend_items_batch(&hists, 5);
        assert_eq!(batch[0], a);

        // UT runs through the chain too, and stays deterministic
        let t = f.target_users(a[0].id, 5);
        assert_eq!(t, f.target_users(a[0].id, 5));
        assert_eq!(t.len(), 5);
        assert_eq!(f.target_users_batch(&[a[0].id], 5)[0], t);

        // the chain actually changes the ranking vs an identity deployment
        let raw = UniMatch::new(UniMatchConfig { rerank: RerankConfig::default(), ..cfg })
            .fit(log)
            .recommend_items(&[1, 2, 3], 5);
        assert_ne!(a, raw, "a debias+mmr+explore chain must reshape the top-k");
    }

    #[test]
    fn rerank_rules_filter_and_cap_items() {
        use unimatch_rerank::BusinessRules;
        use unimatch_data::json::Json;
        let log = DatasetProfile::EComp.generate(0.15, 21).filter_min_interactions(3);
        let base = UniMatchConfig {
            max_seq_len: 8,
            epochs_per_month: 1,
            retriever: RetrieverKind::Exact,
            ..Default::default()
        };
        let raw = UniMatch::new(base.clone()).fit(log.clone());
        let top = raw.recommend_items(&[1, 2, 3], 5);
        let banned = top[0].id;
        let rules = BusinessRules::parse(
            &Json::parse(format!("{{\"deny\":[{banned}]}}").as_bytes()).unwrap(),
        )
        .unwrap();
        let cfg = UniMatchConfig {
            rerank: RerankConfig {
                spec: "filter".to_string(),
                rules: Some(Arc::new(rules)),
            },
            ..base
        };
        let f = UniMatch::new(cfg).fit(log);
        let hits = f.recommend_items(&[1, 2, 3], 5);
        assert_eq!(hits.len(), 5, "overfetch refills the list after the filter");
        assert!(hits.iter().all(|h| h.id != banned), "denied item must not surface");
    }

    #[test]
    #[should_panic(expected = "invalid rerank spec")]
    fn invalid_rerank_spec_panics_at_build() {
        let log = DatasetProfile::EComp.generate(0.15, 21).filter_min_interactions(3);
        let cfg = UniMatchConfig {
            max_seq_len: 8,
            epochs_per_month: 1,
            rerank: RerankConfig { spec: "bogus@1".to_string(), rules: None },
            ..Default::default()
        };
        UniMatch::new(cfg).fit(log);
    }
}
