//! Model evaluation under the paper's protocol: embeds test users/items
//! with the trained towers and runs the IR / UT ranking tasks.

use crate::framework::{FittedUniMatch, RetrieverKind, UniMatch, UniMatchConfig};
use crate::pipeline::MatchPipeline;
use crate::prepare::PreparedData;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use unimatch_ann::{
    BruteForceIndex, EmbeddingStore, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Retriever,
    RowFormat,
};
use unimatch_data::{InteractionLog, SeqBatch, TemporalSplit};
use unimatch_rerank::RerankChain;
use unimatch_eval::{
    build_ir_cases, build_ut_cases, catalog_coverage, evaluate_single_positive_cases,
    exposure_gini, popularity_stats, retrieved_popularity, score_candidates, top_n_candidates,
    CaseMetrics, EmbeddingMatrix, MetricAccumulator, PopularityStats, ProtocolConfig, UserPool,
};
use unimatch_models::TwoTower;
use unimatch_parallel::par_map_indexed;
use unimatch_tensor::ParamSet;

/// How many pseudo-users to embed per forward pass during evaluation.
const EMBED_CHUNK: usize = 256;

/// IR + UT metrics of one evaluation run.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalOutcome {
    /// Item-recommendation metrics.
    pub ir: CaseMetrics,
    /// User-targeting metrics.
    pub ut: CaseMetrics,
    /// Number of IR cases.
    pub ir_cases: usize,
    /// Number of UT cases.
    pub ut_cases: usize,
}

impl EvalOutcome {
    /// The paper's AVG column: mean of IR and UT NDCG.
    pub fn avg_ndcg(&self) -> f64 {
        (self.ir.ndcg + self.ut.ndcg) / 2.0
    }

    /// Mean of IR and UT recall.
    pub fn avg_recall(&self) -> f64 {
        (self.ir.recall + self.ut.recall) / 2.0
    }
}

/// Tab. XI popularity audit of one run's retrievals.
#[derive(Clone, Copy, Debug, Default)]
pub struct RetrievalAudit {
    /// Popularity of items retrieved in IR.
    pub ir_item_popularity: PopularityStats,
    /// Activeness of users retrieved in UT.
    pub ut_user_activeness: PopularityStats,
}

/// Embeds a list of histories into a flat `[N * d]` buffer, chunked.
///
/// Chunks of 256 histories are embedded independently (the user tower is
/// read-only during inference), so the chunk queue is distributed over
/// threads by `unimatch-parallel` once the workload is large enough. The
/// per-chunk forward pass is unchanged, so the output is identical to the
/// sequential loop.
pub fn embed_histories(model: &TwoTower, histories: &[&[u32]], max_seq_len: usize) -> Vec<f32> {
    let d = model.config().embed_dim;
    let n_chunks = histories.len().div_ceil(EMBED_CHUNK);
    // rough per-user forward cost: seq_len embedding rows pooled into d dims
    let work = histories.len() * max_seq_len * d * 16;
    let chunks = par_map_indexed(n_chunks, work, |ci| {
        let chunk = &histories[ci * EMBED_CHUNK..((ci + 1) * EMBED_CHUNK).min(histories.len())];
        let batch = SeqBatch::from_histories(chunk, max_seq_len);
        model.infer_users(&batch).data().to_vec()
    });
    let mut out = Vec::with_capacity(histories.len() * d);
    for chunk in chunks {
        out.extend_from_slice(&chunk);
    }
    out
}

/// Full evaluation of a model (or of checkpoint parameters via
/// [`evaluate_params`]) on a split.
pub fn evaluate(
    model: &TwoTower,
    split: &TemporalSplit,
    protocol: &ProtocolConfig,
    max_seq_len: usize,
    seed: u64,
) -> EvalOutcome {
    evaluate_inner(model, split, protocol, max_seq_len, seed, None).0
}

/// Evaluation that additionally audits the popularity/activeness of
/// retrieved entities (Tab. XI). `trailing_counts` are the interaction
/// counts of items (`.0`) and users (`.1`) over the trailing window.
pub fn evaluate_with_audit(
    model: &TwoTower,
    split: &TemporalSplit,
    protocol: &ProtocolConfig,
    max_seq_len: usize,
    seed: u64,
    trailing_counts: (&[u64], &[u64]),
) -> (EvalOutcome, RetrievalAudit) {
    let (outcome, audit) =
        evaluate_inner(model, split, protocol, max_seq_len, seed, Some(trailing_counts));
    (outcome, audit.expect("audit requested"))
}

/// Multi-positive IR evaluation (Eq. 14's full set-based formulation):
/// each test user's ground truth is every distinct test-month purchase.
pub fn evaluate_multi_ir_model(
    model: &TwoTower,
    split: &TemporalSplit,
    protocol: &ProtocolConfig,
    max_seq_len: usize,
    seed: u64,
) -> CaseMetrics {
    use unimatch_eval::{build_multi_ir_cases, evaluate_multi_ir};
    let dim = model.config().embed_dim;
    let mut rng = StdRng::seed_from_u64(seed);
    let protocol = protocol.clamped(unimatch_eval::item_pool(split).len());
    let cases = build_multi_ir_cases(split, &protocol, &mut rng);
    let item_matrix_t = model.infer_items();
    let item_matrix = EmbeddingMatrix::new(item_matrix_t.data(), dim);
    let histories: Vec<&[u32]> = cases.iter().map(|c| c.history.as_slice()).collect();
    let queries = embed_histories(model, &histories, max_seq_len);
    let query_matrix = EmbeddingMatrix::new(&queries, dim);
    evaluate_multi_ir(query_matrix, item_matrix, &cases, protocol.top_n)
}

/// Evaluates checkpoint parameters by temporarily swapping them into the
/// model (the Fig. 3 pathway).
pub fn evaluate_params(
    model: &mut TwoTower,
    params: &ParamSet,
    split: &TemporalSplit,
    protocol: &ProtocolConfig,
    max_seq_len: usize,
    seed: u64,
) -> EvalOutcome {
    let saved = std::mem::replace(&mut model.params, params.clone());
    let outcome = evaluate(model, split, protocol, max_seq_len, seed);
    model.params = saved;
    outcome
}

/// One side of a raw-vs-reranked comparison: ranking accuracy plus
/// aggregate diversity and popularity of everything retrieved.
#[derive(Clone, Copy, Debug, Default)]
pub struct RerankSide {
    /// Mean IR ranking metrics over all cases.
    pub ir: CaseMetrics,
    /// Fraction of the catalog appearing in at least one list.
    pub coverage: f64,
    /// Gini coefficient of exposure across retrieved items.
    pub gini: f64,
    /// Popularity (trailing interaction count) of retrieved items.
    pub popularity: PopularityStats,
}

/// The re-ranking chain's eval gate: the same fitted deployment answering
/// the same IR cases with the chain off (`raw`) and on (`reranked`).
#[derive(Clone, Debug, Default)]
pub struct RerankEval {
    /// Full-catalog retrieval without the chain.
    pub raw: RerankSide,
    /// The same queries through the configured chain.
    pub reranked: RerankSide,
    /// Number of IR cases evaluated.
    pub cases: usize,
    /// The canonical chain spec under test.
    pub spec: String,
}

impl RerankEval {
    /// Relative change in mean retrieved popularity (negative = the chain
    /// surfaces less-popular items — what a debias stage is for).
    pub fn popularity_lift(&self) -> f64 {
        if self.raw.popularity.mean > 0.0 {
            self.reranked.popularity.mean / self.raw.popularity.mean - 1.0
        } else {
            0.0
        }
    }
}

/// Evaluates a fitted deployment's re-ranking chain against its own raw
/// retrieval: every IR case is answered over the **full catalog** (not the
/// sampled-negative protocol — the chain's filters and exploration need
/// the real candidate space), once raw and once through the chain, and
/// each side is scored for accuracy, diversity, and popularity.
/// `item_counts` are trailing interaction counts per item id.
pub fn evaluate_ir_rerank(
    fitted: &FittedUniMatch,
    split: &TemporalSplit,
    protocol: &ProtocolConfig,
    seed: u64,
    item_counts: &[u64],
) -> RerankEval {
    let top_n = protocol.top_n.min(fitted.num_items()).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let clamped = protocol.clamped(unimatch_eval::item_pool(split).len());
    let cases = build_ir_cases(split, &clamped, &mut rng);
    let histories: Vec<&[u32]> = cases.iter().map(|c| c.history.as_slice()).collect();
    // both sides drive the same canonical pipeline — the chain-off side
    // runs the retrieve stage bare, the chain-on side the full sequence
    let pipeline = fitted.item_pipeline();
    let queries = pipeline.embed(&histories);

    let raw_lists = pipeline.run_raw(&queries, top_n);
    let reranked_lists = pipeline.run(&queries, top_n);

    let score_side = |lists: &[Vec<unimatch_ann::Hit>]| {
        let mut acc = MetricAccumulator::new();
        let mut retrieved = Vec::with_capacity(lists.len() * top_n);
        for (case, hits) in cases.iter().zip(lists) {
            let positive = case.candidates[0];
            let relevant: Vec<bool> = hits.iter().map(|h| h.id == positive).collect();
            acc.add(unimatch_eval::case_metrics(&relevant, 1, top_n));
            retrieved.extend(hits.iter().map(|h| h.id));
        }
        RerankSide {
            ir: acc.mean(),
            coverage: catalog_coverage(&retrieved, fitted.num_items()),
            gini: exposure_gini(&retrieved),
            popularity: popularity_stats(&retrieved_popularity(&retrieved, item_counts)),
        }
    };

    RerankEval {
        raw: score_side(&raw_lists),
        reranked: score_side(&reranked_lists),
        cases: cases.len(),
        spec: fitted.rerank_spec().to_string(),
    }
}

/// End-metric accuracy of one serving store format: the same seeded
/// full-catalog IR cases answered by an exact-retriever deployment whose
/// item store is encoded in [`StoreFormatEval::format`], plus deltas
/// against the exact-f32 oracle.
#[derive(Clone, Copy, Debug)]
pub struct StoreFormatEval {
    /// The row encoding under test.
    pub format: RowFormat,
    /// Mean IR ranking metrics over all cases.
    pub ir: CaseMetrics,
    /// `recall − recall(f32)`. Exactly `0.0` for the f32 entry.
    pub delta_recall: f64,
    /// `ndcg − ndcg(f32)`. Exactly `0.0` for the f32 entry.
    pub delta_ndcg: f64,
}

/// Quantization's end-metric cost, measured end to end (the first slice
/// of the retriever-aware evaluation): for every [`RowFormat`] an
/// exact-retriever deployment is built over the same model and log with
/// its item store encoded in that format, and all deployments answer the
/// same seeded **full-catalog** IR cases through the fused dequant-dot
/// scoring path they would use in production. Entries follow
/// [`RowFormat::ALL`] order (f32 first) and carry recall/NDCG deltas
/// against the f32 entry, so `recall@N(i8) − recall@N(f32)` reads off
/// directly.
///
/// `base` supplies the non-model-shaped serving knobs (seed, retriever
/// params, …); its model-shaped fields, retriever kind (forced to
/// [`RetrieverKind::Exact`] so index approximation never pollutes the
/// format comparison), store format, and mmap flag are overridden per
/// deployment.
pub fn evaluate_store_formats(
    model: &TwoTower,
    log: &InteractionLog,
    base: &UniMatchConfig,
    protocol: &ProtocolConfig,
    seed: u64,
) -> Vec<StoreFormatEval> {
    let max_seq_len = model.config().max_seq_len;
    let split = PreparedData::from_log(log.clone(), max_seq_len).split;
    let mut rng = StdRng::seed_from_u64(seed);
    let clamped = protocol.clamped(unimatch_eval::item_pool(&split).len());
    let cases = build_ir_cases(&split, &clamped, &mut rng);
    let histories: Vec<&[u32]> = cases.iter().map(|c| c.history.as_slice()).collect();
    // user embeddings come from the model towers, not the store — one
    // shared query matrix keeps every format answering identical queries
    let queries = embed_histories(model, &histories, max_seq_len);

    let mut out = Vec::with_capacity(RowFormat::ALL.len());
    for format in RowFormat::ALL {
        let mut cfg = base.clone();
        cfg.embed_dim = model.config().embed_dim;
        cfg.max_seq_len = max_seq_len;
        cfg.extractor = model.config().extractor;
        cfg.aggregator = model.config().aggregator;
        cfg.retriever = RetrieverKind::Exact;
        cfg.store = format;
        cfg.mmap = false;
        // TwoTower is deliberately not Clone; rebuild the architecture
        // and overwrite its fresh weights (the persist loader's trick)
        let copy = {
            let mut init_rng = StdRng::seed_from_u64(0);
            let mut m = TwoTower::new(model.config().clone(), &mut init_rng);
            m.params = model.params.clone();
            m
        };
        let fitted = UniMatch::new(cfg).serve(copy, log.clone());
        let top_n = clamped.top_n.min(fitted.num_items()).max(1);
        let lists = fitted.item_pipeline().run_raw(&queries, top_n);
        let mut acc = MetricAccumulator::new();
        for (case, hits) in cases.iter().zip(&lists) {
            let positive = case.candidates[0];
            let relevant: Vec<bool> = hits.iter().map(|h| h.id == positive).collect();
            acc.add(unimatch_eval::case_metrics(&relevant, 1, top_n));
        }
        out.push(StoreFormatEval {
            format,
            ir: acc.mean(),
            delta_recall: 0.0,
            delta_ndcg: 0.0,
        });
    }
    let oracle = out[0].ir;
    for e in &mut out {
        e.delta_recall = e.ir.recall - oracle.recall;
        e.delta_ndcg = e.ir.ndcg - oracle.ndcg;
    }
    out
}

/// End-metric accuracy of one index backend at one operating point: the
/// same seeded full-catalog IR and UT cases answered by that backend's
/// indexes over one shared pair of embedding stores, plus deltas against
/// the exact (brute-force) oracle.
#[derive(Clone, Copy, Debug)]
pub struct BackendEval {
    /// Stable backend name (`"bruteforce"` / `"hnsw"` / `"ivf"`).
    pub backend: &'static str,
    /// The swept search-time parameter (`"ef_search"` / `"nprobe"`,
    /// empty for the exact oracle).
    pub param: &'static str,
    /// The parameter's value at this operating point (0 for the oracle).
    pub value: usize,
    /// Mean IR ranking metrics over all cases.
    pub ir: CaseMetrics,
    /// Mean UT ranking metrics over all cases.
    pub ut: CaseMetrics,
    /// `ir.recall − ir.recall(exact)`. Exactly `0.0` for the oracle.
    pub delta_ir_recall: f64,
    /// `ir.ndcg − ir.ndcg(exact)`.
    pub delta_ir_ndcg: f64,
    /// `ut.recall − ut.recall(exact)`.
    pub delta_ut_recall: f64,
    /// `ut.ndcg − ut.ndcg(exact)`.
    pub delta_ut_ndcg: f64,
}

impl BackendEval {
    /// `"bruteforce"` or `"hnsw ef_search=32"`-style display label.
    pub fn label(&self) -> String {
        if self.param.is_empty() {
            self.backend.to_string()
        } else {
            format!("{} {}={}", self.backend, self.param, self.value)
        }
    }
}

/// One backend × operating-point of the sweep.
enum SweepPoint {
    Exact,
    Hnsw(HnswConfig),
    Ivf(IvfConfig),
}

impl SweepPoint {
    fn build(&self, store: Arc<EmbeddingStore>, rng: &mut StdRng) -> Box<dyn Retriever> {
        match self {
            SweepPoint::Exact => Box::new(BruteForceIndex::over(store)),
            SweepPoint::Hnsw(cfg) => Box::new(HnswIndex::build_over(store, *cfg, rng)),
            SweepPoint::Ivf(cfg) => Box::new(IvfIndex::build_over(store, *cfg, rng)),
        }
    }
}

/// The index backend's end-metric cost, measured end to end (the second
/// slice of the retriever-aware evaluation, after
/// [`evaluate_store_formats`]): one exact-retriever deployment is built
/// over the model and log, and then the *same* seeded full-catalog IR
/// **and** UT cases are answered through a [`MatchPipeline`] per backend
/// operating point — HNSW at an `ef_search` sweep and IVF at an `nprobe`
/// sweep, at realistic (not effectively-exact) settings — each over the
/// very same pair of embedding stores. The first entry is the
/// brute-force oracle; every entry carries recall/NDCG deltas against
/// it, so `recall@N(hnsw, ef=8) − recall@N(exact)` reads off directly.
///
/// Indexes are built unsharded: exact results are shard-invariant by
/// construction, and sharding an approximate backend changes its graph/
/// list layout — a deployment knob, not a search-quality knob, so it is
/// held fixed here. `base` supplies the non-model-shaped knobs (seed,
/// …); its model-shaped fields and store/mmap/retriever settings are
/// overridden (f32 store, owned, exact) so index approximation is the
/// only variable.
pub fn evaluate_backend_deltas(
    model: &TwoTower,
    log: &InteractionLog,
    base: &UniMatchConfig,
    protocol: &ProtocolConfig,
    seed: u64,
) -> Vec<BackendEval> {
    let max_seq_len = model.config().max_seq_len;
    let split = PreparedData::from_log(log.clone(), max_seq_len).split;

    // one deployment materializes both towers' stores; every sweep point
    // indexes these exact same arenas
    let mut cfg = base.clone();
    cfg.embed_dim = model.config().embed_dim;
    cfg.max_seq_len = max_seq_len;
    cfg.extractor = model.config().extractor;
    cfg.aggregator = model.config().aggregator;
    cfg.retriever = RetrieverKind::Exact;
    cfg.shards = 1;
    cfg.store = RowFormat::F32;
    cfg.mmap = false;
    let copy = {
        let mut init_rng = StdRng::seed_from_u64(0);
        let mut m = TwoTower::new(model.config().clone(), &mut init_rng);
        m.params = model.params.clone();
        m
    };
    let fitted = UniMatch::new(cfg.clone()).serve(copy, log.clone());
    let item_store = fitted.item_store().clone();
    let user_store = fitted.user_store().clone();

    // the shared case set: IR histories through the towers, UT queries
    // gathered from the item store — identical for every sweep point
    let mut rng = StdRng::seed_from_u64(seed);
    let ir_protocol = protocol.clamped(unimatch_eval::item_pool(&split).len());
    let ir_cases = build_ir_cases(&split, &ir_protocol, &mut rng);
    let histories: Vec<&[u32]> = ir_cases.iter().map(|c| c.history.as_slice()).collect();
    let ir_queries = embed_histories(model, &histories, max_seq_len);
    let ir_top_n = ir_protocol.top_n.min(fitted.num_items()).max(1);

    let ut_protocol = protocol.clamped(fitted.user_pool.len());
    let ut_cases = build_ut_cases(&split, &fitted.user_pool, &ut_protocol, &mut rng);
    let ut_queries: Vec<f32> = ut_cases
        .iter()
        .flat_map(|c| item_store.decode_row(c.item as usize).into_owned())
        .collect();
    let ut_top_n = ut_protocol.top_n.min(fitted.num_pool_users()).max(1);

    let sweep: Vec<(&'static str, &'static str, usize, SweepPoint)> = {
        let mut s = vec![("bruteforce", "", 0, SweepPoint::Exact)];
        for ef in [8usize, 32, 128] {
            let hnsw = HnswConfig { ef_search: ef, ..HnswConfig::default() };
            s.push(("hnsw", "ef_search", ef, SweepPoint::Hnsw(hnsw)));
        }
        for nprobe in [1usize, 2, 8] {
            let ivf = IvfConfig { nprobe, ..IvfConfig::default() };
            s.push(("ivf", "nprobe", nprobe, SweepPoint::Ivf(ivf)));
        }
        s
    };

    let score = |lists: &[Vec<unimatch_ann::Hit>], positives: &[u32], top_n: usize| {
        let mut acc = MetricAccumulator::new();
        for (&positive, hits) in positives.iter().zip(lists) {
            let relevant: Vec<bool> = hits.iter().map(|h| h.id == positive).collect();
            acc.add(unimatch_eval::case_metrics(&relevant, 1, top_n));
        }
        acc.mean()
    };
    let ir_positives: Vec<u32> = ir_cases.iter().map(|c| c.candidates[0]).collect();
    let ut_positives: Vec<u32> = ut_cases.iter().map(|c| c.candidates[0] as u32).collect();

    let chain = RerankChain::identity();
    let mut out = Vec::with_capacity(sweep.len());
    for (backend, param, value, point) in &sweep {
        // mirror the deployment builder's index seeding: item index
        // first, user index second, off one derived rng
        let mut idx_rng = StdRng::seed_from_u64(cfg.seed ^ 0x1d);
        let item_index = point.build(item_store.clone(), &mut idx_rng);
        let user_index = point.build(user_store.clone(), &mut idx_rng);
        let ir_lists =
            MatchPipeline::over(item_index.as_ref(), &item_store, &chain).run_raw(&ir_queries, ir_top_n);
        let ut_lists =
            MatchPipeline::over(user_index.as_ref(), &user_store, &chain).run_raw(&ut_queries, ut_top_n);
        out.push(BackendEval {
            backend,
            param,
            value: *value,
            ir: score(&ir_lists, &ir_positives, ir_top_n),
            ut: score(&ut_lists, &ut_positives, ut_top_n),
            delta_ir_recall: 0.0,
            delta_ir_ndcg: 0.0,
            delta_ut_recall: 0.0,
            delta_ut_ndcg: 0.0,
        });
    }
    let oracle = out[0];
    for e in &mut out {
        e.delta_ir_recall = e.ir.recall - oracle.ir.recall;
        e.delta_ir_ndcg = e.ir.ndcg - oracle.ir.ndcg;
        e.delta_ut_recall = e.ut.recall - oracle.ut.recall;
        e.delta_ut_ndcg = e.ut.ndcg - oracle.ut.ndcg;
    }
    out
}

fn evaluate_inner(
    model: &TwoTower,
    split: &TemporalSplit,
    protocol: &ProtocolConfig,
    max_seq_len: usize,
    seed: u64,
    trailing_counts: Option<(&[u64], &[u64])>,
) -> (EvalOutcome, Option<RetrievalAudit>) {
    let dim = model.config().embed_dim;
    let mut rng = StdRng::seed_from_u64(seed);

    // ---- IR ---------------------------------------------------------------
    let ir_protocol = protocol.clamped(unimatch_eval::item_pool(split).len());
    let ir_cases = build_ir_cases(split, &ir_protocol, &mut rng);
    let item_matrix_t = model.infer_items();
    let item_matrix = EmbeddingMatrix::new(item_matrix_t.data(), dim);
    let histories: Vec<&[u32]> = ir_cases.iter().map(|c| c.history.as_slice()).collect();
    let user_queries = embed_histories(model, &histories, max_seq_len);
    let query_matrix = EmbeddingMatrix::new(&user_queries, dim);
    let ir_candidates: Vec<Vec<u32>> = ir_cases.iter().map(|c| c.candidates.clone()).collect();
    let ir =
        evaluate_single_positive_cases(query_matrix, item_matrix, &ir_candidates, ir_protocol.top_n);

    // ---- UT ---------------------------------------------------------------
    let pool = UserPool::build(split, max_seq_len);
    let ut_protocol = protocol.clamped(pool.len());
    let ut_cases = build_ut_cases(split, &pool, &ut_protocol, &mut rng);
    let pool_histories: Vec<&[u32]> = pool.histories().iter().map(|h| h.as_slice()).collect();
    let pool_embeddings = embed_histories(model, &pool_histories, max_seq_len);
    let pool_matrix = EmbeddingMatrix::new(&pool_embeddings, dim);
    let ut_candidates: Vec<Vec<u32>> = ut_cases
        .iter()
        .map(|c| c.candidates.iter().map(|&ix| ix as u32).collect())
        .collect();
    let ut_query_buf: Vec<f32> = ut_cases
        .iter()
        .flat_map(|c| item_matrix.row(c.item as usize).iter().copied())
        .collect();
    let ut_query_matrix = EmbeddingMatrix::new(&ut_query_buf, dim);
    let ut = evaluate_single_positive_cases(
        ut_query_matrix,
        pool_matrix,
        &ut_candidates,
        ut_protocol.top_n,
    );

    let outcome = EvalOutcome {
        ir,
        ut,
        ir_cases: ir_cases.len(),
        ut_cases: ut_cases.len(),
    };

    let audit = trailing_counts.map(|(item_counts, user_counts)| {
        // collect top-n retrieved entity ids across all cases; cases are
        // independent, so they fan out over threads in input order
        let neg = protocol.negatives + 1;
        let ir_retrieved: Vec<u32> = par_map_indexed(
            ir_cases.len(),
            ir_cases.len() * neg * dim * 2,
            |q| {
                let c = &ir_cases[q];
                let scores = score_candidates(query_matrix.row(q), item_matrix, &c.candidates);
                top_n_candidates(&scores, ir_protocol.top_n)
                    .into_iter()
                    .map(|ix| c.candidates[ix])
                    .collect::<Vec<u32>>()
            },
        )
        .into_iter()
        .flatten()
        .collect();
        let ut_retrieved: Vec<u32> = par_map_indexed(
            ut_cases.len(),
            ut_cases.len() * neg * dim * 2,
            |q| {
                let c = &ut_cases[q];
                let cands: Vec<u32> = c.candidates.iter().map(|&ix| ix as u32).collect();
                let scores = score_candidates(ut_query_matrix.row(q), pool_matrix, &cands);
                top_n_candidates(&scores, ut_protocol.top_n)
                    .into_iter()
                    .map(|ix| pool.user(c.candidates[ix]))
                    .collect::<Vec<u32>>()
            },
        )
        .into_iter()
        .flatten()
        .collect();
        RetrievalAudit {
            ir_item_popularity: popularity_stats(&retrieved_popularity(&ir_retrieved, item_counts)),
            ut_user_activeness: popularity_stats(&retrieved_popularity(&ut_retrieved, user_counts)),
        }
    });

    (outcome, audit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::PreparedData;
    use rand::SeedableRng;
    use unimatch_data::DatasetProfile;
    use unimatch_models::{ModelConfig, TwoTower};

    fn setup() -> (PreparedData, TwoTower) {
        let p = PreparedData::synthetic(DatasetProfile::EComp, 0.15, 11);
        let mut rng = StdRng::seed_from_u64(1);
        let model = TwoTower::new(
            ModelConfig::youtube_dnn_mean(p.num_items(), p.max_seq_len, 0.2),
            &mut rng,
        );
        (p, model)
    }

    #[test]
    fn untrained_model_produces_valid_metrics() {
        // NOTE: an *untrained* two-tower can still beat chance here —
        // repurchase-heavy histories overlap their own targets, so a mean
        // of random item embeddings correlates with the positive. We only
        // assert validity, not chance-level performance.
        let (p, model) = setup();
        let protocol = ProtocolConfig { top_n: 10, negatives: 49 };
        let out = evaluate(&model, &p.split, &protocol, p.max_seq_len, 5);
        assert!(out.ir_cases > 0 && out.ut_cases > 0);
        for m in [out.ir, out.ut] {
            assert!((0.0..=1.0).contains(&m.recall));
            assert!((0.0..=1.0).contains(&m.ndcg));
            assert!(m.ndcg <= m.recall + 1e-9, "NDCG cannot exceed recall for 1 positive");
        }
    }

    #[test]
    fn evaluation_is_deterministic_per_seed() {
        let (p, model) = setup();
        let protocol = ProtocolConfig { top_n: 5, negatives: 20 };
        let a = evaluate(&model, &p.split, &protocol, p.max_seq_len, 7);
        let b = evaluate(&model, &p.split, &protocol, p.max_seq_len, 7);
        assert_eq!(a.ir, b.ir);
        assert_eq!(a.ut, b.ut);
    }

    #[test]
    fn audit_returns_positive_popularity() {
        let (p, model) = setup();
        let protocol = ProtocolConfig { top_n: 5, negatives: 20 };
        let item_counts = p.log.item_counts();
        let user_counts = p.log.user_counts();
        let (_, audit) = evaluate_with_audit(
            &model,
            &p.split,
            &protocol,
            p.max_seq_len,
            9,
            (&item_counts, &user_counts),
        );
        assert!(audit.ir_item_popularity.mean > 0.0);
        assert!(audit.ut_user_activeness.mean > 0.0);
    }

    #[test]
    fn rerank_eval_compares_raw_and_chained_sides() {
        use crate::framework::{RerankConfig, RetrieverKind, UniMatch, UniMatchConfig};
        let log = DatasetProfile::EComp.generate(0.15, 11).filter_min_interactions(3);
        let counts = log.item_counts();
        let cfg = UniMatchConfig {
            max_seq_len: 8,
            epochs_per_month: 1,
            retriever: RetrieverKind::Exact,
            rerank: RerankConfig { spec: "debias@2,explore@0.2".to_string(), rules: None },
            ..Default::default()
        };
        let fitted = UniMatch::new(cfg).fit(log.clone());
        let protocol = ProtocolConfig { top_n: 10, negatives: 20 };
        let split = PreparedData::from_log(log, 8).split;
        let eval = evaluate_ir_rerank(&fitted, &split, &protocol, 5, &counts);
        assert!(eval.cases > 0);
        assert_eq!(eval.spec, "debias@2,explore@0.2");
        for side in [&eval.raw, &eval.reranked] {
            assert!((0.0..=1.0).contains(&side.ir.recall));
            assert!((0.0..=1.0).contains(&side.coverage));
            assert!((0.0..=1.0).contains(&side.gini));
        }
        // a strong debias must actually move retrieved popularity
        assert!(
            eval.popularity_lift() < 0.0,
            "debias@2 should surface less-popular items: lift {}",
            eval.popularity_lift()
        );
        // deterministic under a fixed seed
        let again = evaluate_ir_rerank(&fitted, &split, &protocol, 5, &counts);
        assert_eq!(eval.reranked.ir, again.reranked.ir);
        assert_eq!(eval.reranked.gini, again.reranked.gini);
    }

    #[test]
    fn store_format_eval_reports_deltas_vs_f32() {
        let log = DatasetProfile::EComp.generate(0.15, 11).filter_min_interactions(3);
        let cfg = UniMatchConfig { max_seq_len: 8, epochs_per_month: 1, ..Default::default() };
        let fitted = UniMatch::new(cfg.clone()).fit(log.clone());
        let protocol = ProtocolConfig { top_n: 10, negatives: 20 };
        let evals = evaluate_store_formats(&fitted.model, &log, &cfg, &protocol, 5);
        assert_eq!(evals.len(), RowFormat::ALL.len());
        assert_eq!(evals[0].format, RowFormat::F32);
        assert_eq!(evals[0].delta_recall, 0.0);
        assert_eq!(evals[0].delta_ndcg, 0.0);
        for e in &evals {
            assert!((0.0..=1.0).contains(&e.ir.recall));
            assert!((0.0..=1.0).contains(&e.ir.ndcg));
            assert_eq!(e.delta_recall, e.ir.recall - evals[0].ir.recall);
            assert_eq!(e.delta_ndcg, e.ir.ndcg - evals[0].ir.ndcg);
        }
        // half precision is near-lossless on unit-norm rows; int8's
        // per-row affine grid costs at most a few list positions
        assert!(evals[1].delta_recall.abs() <= 0.02, "f16 delta {}", evals[1].delta_recall);
        assert!(evals[2].delta_recall.abs() <= 0.10, "i8 delta {}", evals[2].delta_recall);
        // deterministic under a fixed seed
        let again = evaluate_store_formats(&fitted.model, &log, &cfg, &protocol, 5);
        for (a, b) in evals.iter().zip(&again) {
            assert_eq!(a.ir, b.ir);
        }
    }

    #[test]
    fn backend_delta_eval_reports_deltas_vs_exact() {
        let log = DatasetProfile::EComp.generate(0.15, 11).filter_min_interactions(3);
        let cfg = UniMatchConfig { max_seq_len: 8, epochs_per_month: 1, ..Default::default() };
        let fitted = UniMatch::new(cfg.clone()).fit(log.clone());
        let protocol = ProtocolConfig { top_n: 10, negatives: 20 };
        let evals = evaluate_backend_deltas(&fitted.model, &log, &cfg, &protocol, 5);
        // exact oracle + 3 hnsw ef points + 3 ivf nprobe points
        assert_eq!(evals.len(), 7);
        assert_eq!(evals[0].backend, "bruteforce");
        assert_eq!(evals[0].delta_ir_recall, 0.0);
        assert_eq!(evals[0].delta_ut_ndcg, 0.0);
        for e in &evals {
            for m in [e.ir, e.ut] {
                assert!((0.0..=1.0).contains(&m.recall), "{}: recall {}", e.label(), m.recall);
                assert!((0.0..=1.0).contains(&m.ndcg), "{}: ndcg {}", e.label(), m.ndcg);
            }
            assert_eq!(e.delta_ir_recall, e.ir.recall - evals[0].ir.recall);
            assert_eq!(e.delta_ut_recall, e.ut.recall - evals[0].ut.recall);
        }
        // the sweep covers both approximate backends at 3 points each,
        // and a generous ef keeps HNSW within shouting distance of exact
        let hnsw: Vec<&BackendEval> =
            evals.iter().filter(|e| e.backend == "hnsw").collect();
        assert_eq!(hnsw.len(), 3);
        assert_eq!(evals.iter().filter(|e| e.backend == "ivf").count(), 3);
        assert!(
            hnsw[2].delta_ir_recall.abs() <= 0.5,
            "ef=128 delta {} suspiciously far from exact",
            hnsw[2].delta_ir_recall
        );
        // deterministic under a fixed seed
        let again = evaluate_backend_deltas(&fitted.model, &log, &cfg, &protocol, 5);
        for (a, b) in evals.iter().zip(&again) {
            assert_eq!(a.ir, b.ir);
            assert_eq!(a.ut, b.ut);
        }
    }

    #[test]
    fn evaluate_params_restores_model() {
        let (p, mut model) = setup();
        let protocol = ProtocolConfig { top_n: 5, negatives: 20 };
        let fresh = model.params.clone();
        let other = {
            let mut rng = StdRng::seed_from_u64(99);
            TwoTower::new(
                ModelConfig::youtube_dnn_mean(p.num_items(), p.max_seq_len, 0.2),
                &mut rng,
            )
            .params
        };
        let _ = evaluate_params(&mut model, &other, &p.split, &protocol, p.max_seq_len, 3);
        let id = fresh.ids().next().expect("params");
        assert_eq!(model.params.get(id).data(), fresh.get(id).data());
    }
}
