//! The canonical query pipeline: **embed → retrieve → rerank → respond**
//! as one composable object.
//!
//! Every surface that answers a UniMatch query — the
//! [`FittedUniMatch`](crate::FittedUniMatch) single/batch/checked
//! methods, the serving batcher, the offline evaluators, and a serving
//! shadow deployment — executes the *same* [`MatchPipeline`], so a
//! behavior exists in exactly one place and two configurations can be
//! compared stage by stage:
//!
//! ```text
//!            ┌────────┐   ┌──────────────────┐   ┌────────┐   ┌───────────┐
//! history ──►│ embed  │──►│ retrieve         │──►│ rerank │──►│ translate │──► hits / (id, score)
//! item id ──►│ gather │   │ (sharded, quorum │   │ (chain │   │ (row →    │
//!            └────────┘   │  checked, over-  │   │  + de- │   │  external │
//!                         │  fetched)        │   │  grade)│   │  id)      │
//!                         └──────────────────┘   └────────┘   └───────────┘
//! ```
//!
//! A pipeline borrows its parts (index, store, chain, marginals) for the
//! duration of a call — it is a cheap, copy-on-construct *view* over a
//! deployment, not an owner. [`FittedUniMatch::item_pipeline`] and
//! [`FittedUniMatch::user_pipeline`] build the two tower-specific views;
//! [`MatchPipeline::over`] builds a standalone view for offline
//! comparisons (e.g. the backend-delta evaluation sweeps custom
//! HNSW/IVF indexes over a deployment's stores).
//!
//! Determinism contract: every composed runner (`run*`) issues exactly
//! the call sequence the pre-pipeline code paths issued, so results are
//! bitwise identical to them — pinned by `tests/pipeline_parity.rs`.
//!
//! [`FittedUniMatch::item_pipeline`]: crate::FittedUniMatch::item_pipeline
//! [`FittedUniMatch::user_pipeline`]: crate::FittedUniMatch::user_pipeline

use crate::evaluate::embed_histories;
use unimatch_ann::{
    EmbeddingStore, Hit, QuorumError, Retriever, SearchOptions, ShardHealth,
};
use unimatch_data::SeqBatch;
use unimatch_models::TwoTower;
use unimatch_rerank::{query_tag, BusinessRules, RerankChain, RerankContext, StageSkip};

/// What a fallible, degradable batch query returns: per-query result
/// lists plus the fan-out's [`ShardHealth`], or a [`QuorumError`] when
/// too few shards answered.
pub type CheckedBatch<T> = Result<(Vec<Vec<T>>, ShardHealth), QuorumError>;

/// Serving-time degradation knobs for one batched answer — the brownout
/// controller's hooks into the pipeline. [`DegradeOptions::NONE`] (the
/// default) is guaranteed bitwise invisible: every checked call with it
/// produces exactly the bytes of its unchecked counterpart.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DegradeOptions {
    /// Skip `explore` re-ranking stages.
    pub skip_explore: bool,
    /// Skip `mmr` re-ranking stages.
    pub skip_mmr: bool,
    /// Over-fetch with [`RerankChain::fetch_k_reduced`] instead of the
    /// full headroom.
    pub shrink_overfetch: bool,
    /// Accept an answer from a single healthy shard (overrides the
    /// configured quorum for this call).
    pub relax_quorum: bool,
}

impl DegradeOptions {
    /// Full quality — no degradation.
    pub const NONE: DegradeOptions = DegradeOptions {
        skip_explore: false,
        skip_mmr: false,
        shrink_overfetch: false,
        relax_quorum: false,
    };

    /// The rerank-stage skip set these options imply.
    pub fn stage_skip(self) -> StageSkip {
        StageSkip { explore: self.skip_explore, mmr: self.skip_mmr }
    }
}

/// Where a pipeline's query embeddings come from — the *embed* stage.
pub enum QuerySource<'a> {
    /// Queries are histories, embedded through the user tower (the IR
    /// direction).
    Tower {
        /// The trained two-tower model.
        model: &'a TwoTower,
        /// History truncation length the model was fitted with.
        max_seq_len: usize,
    },
    /// Queries are rows gathered from an embedding store by id (the UT
    /// direction: item rows querying the user index).
    Rows(&'a EmbeddingStore),
    /// The caller supplies pre-embedded queries; [`MatchPipeline::embed`]
    /// and [`MatchPipeline::gather`] panic.
    External,
}

/// One tower's query pipeline: a borrowed view over an index, its
/// backing store, and the re-ranking chain, exposing the stage sequence
/// both as composed runners (`run*`) and as individual stages for
/// callers that interleave their own work (e.g. the serving batcher's
/// embedding cache between *embed* and *retrieve*).
pub struct MatchPipeline<'a> {
    source: QuerySource<'a>,
    index: &'a dyn Retriever,
    store: &'a EmbeddingStore,
    rerank: &'a RerankChain,
    log_marginals: Option<&'a [f32]>,
    external_ids: Option<&'a [u32]>,
    rules: Option<&'a BusinessRules>,
    seed: u64,
}

impl<'a> MatchPipeline<'a> {
    /// A standalone pipeline over an index, the store its hit rows point
    /// into, and a re-ranking chain — with no embed source, no
    /// marginals, no rules, and seed 0. The offline-comparison
    /// entry point; attach the optional parts with the `with_*`
    /// builders.
    pub fn over(
        index: &'a dyn Retriever,
        store: &'a EmbeddingStore,
        rerank: &'a RerankChain,
    ) -> MatchPipeline<'a> {
        MatchPipeline {
            source: QuerySource::External,
            index,
            store,
            rerank,
            log_marginals: None,
            external_ids: None,
            rules: None,
            seed: 0,
        }
    }

    /// Attaches the embed stage's input source.
    pub fn with_source(mut self, source: QuerySource<'a>) -> Self {
        self.source = source;
        self
    }

    /// Attaches row-aligned `log p̂(·)` marginals (read by the debias
    /// stage).
    pub fn with_marginals(mut self, log_marginals: &'a [f32]) -> Self {
        self.log_marginals = Some(log_marginals);
        self
    }

    /// Attaches a row → external-id table (the user tower's pool rows;
    /// also consulted by [`MatchPipeline::translate`]).
    pub fn with_external_ids(mut self, external_ids: &'a [u32]) -> Self {
        self.external_ids = Some(external_ids);
        self
    }

    /// Attaches business rules for the chain's filter/cap stages.
    pub fn with_rules(mut self, rules: Option<&'a BusinessRules>) -> Self {
        self.rules = rules;
        self
    }

    /// Sets the deployment seed of the deterministic exploration stream.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    // ---- stage: embed / gather -------------------------------------------

    /// Embedding dimension of the query space.
    pub fn dim(&self) -> usize {
        self.store.dim()
    }

    /// Number of indexed rows (the retrieval candidate count).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.index.len() == 0
    }

    /// The chain's over-fetch for a caller-requested `k` (identity
    /// chains fetch exactly `k`).
    pub fn fetch_k(&self, k: usize) -> usize {
        self.rerank.fetch_k(k)
    }

    /// *Embed*, batched: histories through the tower in parallel chunks,
    /// flattened in input order (`n × dim`). Panics unless the source is
    /// [`QuerySource::Tower`].
    pub fn embed(&self, histories: &[&[u32]]) -> Vec<f32> {
        match self.source {
            QuerySource::Tower { model, max_seq_len } => {
                embed_histories(model, histories, max_seq_len)
            }
            _ => panic!("this pipeline has no tower to embed histories with"),
        }
    }

    /// *Embed*, single query: one forward pass, identical bytes to the
    /// batched path's row for the same history.
    pub fn embed_one(&self, history: &[u32]) -> Vec<f32> {
        match self.source {
            QuerySource::Tower { model, max_seq_len } => {
                let batch = SeqBatch::from_histories(&[history], max_seq_len);
                model.infer_users(&batch).into_vec()
            }
            _ => panic!("this pipeline has no tower to embed histories with"),
        }
    }

    /// *Gather*: query rows decoded from the source store by id,
    /// flattened in input order (no re-inference). Panics unless the
    /// source is [`QuerySource::Rows`].
    pub fn gather(&self, ids: &[u32]) -> Vec<f32> {
        match self.source {
            QuerySource::Rows(store) => ids
                .iter()
                .flat_map(|&i| store.decode_row(i as usize).into_owned())
                .collect(),
            _ => panic!("this pipeline has no row store to gather queries from"),
        }
    }

    // ---- stage: retrieve --------------------------------------------------

    /// *Retrieve*, single query at an explicit fetch depth.
    pub fn retrieve_one(&self, query: &[f32], fetch: usize) -> Vec<Hit> {
        self.index.search(query, fetch)
    }

    /// *Retrieve*, batched at an explicit fetch depth (panicking form —
    /// shard failures propagate).
    pub fn retrieve(&self, queries: &[f32], fetch: usize) -> Vec<Vec<Hit>> {
        self.index.search_batch(queries, fetch)
    }

    /// *Retrieve*, batched under shard failure isolation.
    pub fn retrieve_checked(
        &self,
        queries: &[f32],
        fetch: usize,
        opts: SearchOptions,
    ) -> Result<(Vec<Vec<Hit>>, ShardHealth), QuorumError> {
        self.index.search_batch_checked(queries, fetch, opts)
    }

    // ---- stage: rerank ----------------------------------------------------

    /// *Rerank*: the configured chain over one query's retrieval result.
    /// Identity chains return `hits` untouched — same allocation, same
    /// bytes — so an unconfigured deployment is bitwise unchanged.
    pub fn rerank(&self, query: &[f32], hits: Vec<Hit>, k: usize) -> Vec<Hit> {
        self.rerank_degraded(query, hits, k, StageSkip::NONE)
    }

    /// [`MatchPipeline::rerank`] minus the stages in `skip`.
    pub fn rerank_degraded(
        &self,
        query: &[f32],
        hits: Vec<Hit>,
        k: usize,
        skip: StageSkip,
    ) -> Vec<Hit> {
        if self.rerank.is_identity() {
            return hits;
        }
        let ctx = RerankContext {
            store: Some(self.store),
            log_marginals: self.log_marginals,
            external_ids: self.external_ids,
            rules: self.rules,
            seed: self.seed,
            query_tag: query_tag(query),
            k,
        };
        self.rerank.apply_degraded(&ctx, hits, skip)
    }

    // ---- stage: respond ---------------------------------------------------

    /// *Translate*: hit rows to `(external_id, score)` pairs through the
    /// store's id mapping (identity for the item tower, pool row → user
    /// id for the user tower).
    pub fn translate(&self, hits: Vec<Hit>) -> Vec<(u32, f32)> {
        hits.into_iter().map(|h| (self.store.id_of_row(h.id as usize), h.score)).collect()
    }

    // ---- composed runners -------------------------------------------------

    /// Embedded single query → over-fetched retrieval → chain → top-k.
    pub fn run_one(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let hits = self.retrieve_one(query, self.rerank.fetch_k(k));
        self.rerank(query, hits, k)
    }

    /// Batched queries (`n × dim` flat) → over-fetched retrieval → chain
    /// → top-k per query, in input order. Identical to
    /// [`MatchPipeline::run_one`] per row.
    pub fn run(&self, queries: &[f32], k: usize) -> Vec<Vec<Hit>> {
        let dim = self.store.dim();
        self.retrieve(queries, self.rerank.fetch_k(k))
            .into_iter()
            .enumerate()
            .map(|(q, hits)| self.rerank(&queries[q * dim..(q + 1) * dim], hits, k))
            .collect()
    }

    /// Fallible, degradable form of [`MatchPipeline::run`]: the
    /// retrieval fan-out runs under shard failure isolation and the
    /// returned [`ShardHealth`] reports any dropped shards; `degrade`
    /// applies the brownout ladder's quality reductions. With
    /// [`DegradeOptions::NONE`] and a healthy fan-out the hit lists are
    /// bitwise identical to the unchecked call.
    pub fn run_checked(
        &self,
        queries: &[f32],
        k: usize,
        degrade: DegradeOptions,
    ) -> CheckedBatch<Hit> {
        let dim = self.store.dim();
        let fetch = if degrade.shrink_overfetch {
            self.rerank.fetch_k_reduced(k)
        } else {
            self.rerank.fetch_k(k)
        };
        let opts = SearchOptions { relax_quorum: degrade.relax_quorum };
        let (lists, health) = self.retrieve_checked(queries, fetch, opts)?;
        let skip = degrade.stage_skip();
        let reranked = lists
            .into_iter()
            .enumerate()
            .map(|(q, hits)| {
                self.rerank_degraded(&queries[q * dim..(q + 1) * dim], hits, k, skip)
            })
            .collect();
        Ok((reranked, health))
    }

    /// Batched retrieval at exactly `k` with **no** over-fetch and no
    /// chain — the raw baseline offline evaluators compare against.
    pub fn run_raw(&self, queries: &[f32], k: usize) -> Vec<Vec<Hit>> {
        self.retrieve(queries, k)
    }
}
