//! Offline batch inference: the QuickAudience-style nightly job.
//!
//! Private-domain campaigns run weekly/monthly, so in production the
//! scores are not computed per online query — the whole top-k-items-per-
//! user (and top-k-users-per-item) matrix is materialized offline. This
//! module does that with blocked exact matmuls over the embedding
//! matrices, the right tool when you need *every* row's top-k anyway
//! (ANN indexes win only for sparse online lookups).
//!
//! The scoring itself is the retrieval engine's blocked exact kernel
//! (`unimatch_ann::top_k_exact`): query blocks form a chunked work queue
//! claimed by worker threads through `unimatch-parallel` when the total
//! score count crosses the configured threshold, and each block keeps
//! its own top-k state. Block boundaries never share state, so the
//! blocked-parallel result is identical to the sequential one.

use unimatch_eval::EmbeddingMatrix;

/// Top-k per query row of `queries` against all of `targets`, exact.
/// Returns one `(target_id, score)` list per query row, best first
/// (ties broken by ascending target id).
///
/// A thin adapter over the retrieval engine's blocked kernel
/// (`unimatch_ann::top_k_exact`), which distributes query blocks over
/// threads via `unimatch-parallel` when `rows × targets × dim`
/// multiply-adds exceed the global work threshold. Every block computes
/// exactly the scores the sequential path would, so results do not depend
/// on the thread count.
pub fn top_k_blocked(
    queries: EmbeddingMatrix<'_>,
    targets: EmbeddingMatrix<'_>,
    k: usize,
) -> Vec<Vec<(u32, f32)>> {
    assert_eq!(queries.dim(), targets.dim(), "embedding dim mismatch");
    assert!(k >= 1, "k must be >= 1");
    unimatch_ann::top_k_exact(queries.as_slice(), targets.as_slice(), queries.dim(), k)
        .into_iter()
        .map(|hits| hits.into_iter().map(|h| (h.id, h.score)).collect())
        .collect()
}

/// The materialized nightly artifact: every pool user's item list and
/// every item's user list, from one pass over the embeddings.
#[derive(Clone, Debug, Default)]
pub struct BatchRecommendations {
    /// `per_user[u]` = top-k `(item, score)` for pool user index `u`.
    pub per_user: Vec<Vec<(u32, f32)>>,
    /// `per_item[i]` = top-k `(pool user index, score)` for item `i`.
    pub per_item: Vec<Vec<(u32, f32)>>,
}

/// Materializes both directions.
pub fn materialize(
    user_embeddings: EmbeddingMatrix<'_>,
    item_embeddings: EmbeddingMatrix<'_>,
    k_items_per_user: usize,
    k_users_per_item: usize,
) -> BatchRecommendations {
    BatchRecommendations {
        per_user: top_k_blocked(user_embeddings, item_embeddings, k_items_per_user),
        per_item: top_k_blocked(item_embeddings, user_embeddings, k_users_per_item),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(v: &[f32]) -> Vec<f32> {
        let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        v.iter().map(|x| x / n).collect()
    }

    #[test]
    fn top_k_matches_exhaustive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let d = 8;
        let queries: Vec<f32> = (0..300 * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let targets: Vec<f32> = (0..500 * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let qm = EmbeddingMatrix::new(&queries, d);
        let tm = EmbeddingMatrix::new(&targets, d);
        let lists = top_k_blocked(qm, tm, 5);
        assert_eq!(lists.len(), 300);
        for (q, list) in lists.iter().enumerate() {
            assert_eq!(list.len(), 5);
            assert!(list.windows(2).all(|w| w[0].1 >= w[1].1));
            // exhaustive check of the best hit
            let query = qm.row(q);
            let best_exhaustive = (0..500)
                .map(|t| query.iter().zip(tm.row(t)).map(|(a, b)| a * b).sum::<f32>())
                .fold(f32::NEG_INFINITY, f32::max);
            assert!((list[0].1 - best_exhaustive).abs() < 1e-5);
        }
    }

    #[test]
    fn k_larger_than_targets_truncates() {
        let queries = unit(&[1.0, 0.0]);
        let targets = [unit(&[1.0, 0.0]), unit(&[0.0, 1.0])].concat();
        let lists = top_k_blocked(
            EmbeddingMatrix::new(&queries, 2),
            EmbeddingMatrix::new(&targets, 2),
            10,
        );
        assert_eq!(lists[0].len(), 2);
        assert_eq!(lists[0][0].0, 0);
    }

    #[test]
    fn materialize_is_consistent_between_directions() {
        // if item i is user u's #1, then u appears in i's list whenever the
        // lists are long enough to be exhaustive
        let users = [unit(&[1.0, 0.1]), unit(&[0.1, 1.0])].concat();
        let items = [unit(&[1.0, 0.0]), unit(&[0.0, 1.0])].concat();
        let rec = materialize(
            EmbeddingMatrix::new(&users, 2),
            EmbeddingMatrix::new(&items, 2),
            2,
            2,
        );
        assert_eq!(rec.per_user[0][0].0, 0);
        assert_eq!(rec.per_user[1][0].0, 1);
        assert_eq!(rec.per_item[0][0].0, 0);
        assert_eq!(rec.per_item[1][0].0, 1);
    }
}
