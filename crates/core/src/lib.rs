//! # unimatch-core
//!
//! The UniMatch framework (Zhao et al., ICDE 2023): **one** two-tower
//! model trained with the bidirectional bias-corrected NCE loss (bbcNCE)
//! serves both of a merchant's marketing tasks —
//!
//! * **item recommendation (IR)**: given a user, rank items (`p(i|u)`);
//! * **user targeting (UT)**: given an item, rank users (`p(u|i)`).
//!
//! bbcNCE drives the similarity `φ_θ(u,i)` toward the joint probability
//! `log p̂(u,i)`, whose rankings agree with both conditionals, so one set
//! of embeddings — served through ANN indexes — answers both directions.
//!
//! ```no_run
//! use unimatch_core::{UniMatch, UniMatchConfig};
//! use unimatch_data::DatasetProfile;
//!
//! let log = DatasetProfile::EComp.generate(0.2, 42).filter_min_interactions(3);
//! let fitted = UniMatch::new(UniMatchConfig::default()).fit(log);
//!
//! let recs = fitted.recommend_items(&[3, 17, 42], 10);   // IR
//! let targets = fitted.target_users(recs[0].id, 10);     // UT — same model
//! ```
//!
//! Besides the serving facade, this crate hosts the experiment machinery
//! regenerating the paper's evaluation: [`experiment`] (Tabs. VIII–XII,
//! Fig. 3), [`grid`] (Tab. VII), and [`cost`] (the ≥94 % saving of
//! Sec. IV-B5).

#![warn(missing_docs)]

pub mod audience;
pub mod batch_inference;
pub mod cost;
pub mod durable;
pub mod evaluate;
pub mod experiment;
pub mod framework;
pub mod grid;
pub mod hyper;
pub mod persist;
pub mod pipeline;
pub mod prepare;
pub mod serving;

pub use audience::{build_targeting_list, plan_campaigns, CampaignSpec, CampaignSubject, TargetingList};
pub use batch_inference::{materialize, top_k_blocked, BatchRecommendations};
pub use cost::{CostComparison, Regime};
pub use durable::{
    train_durable, DurableConfig, DurableError, DurableRun, MonthRecord, RunManifest,
};
pub use evaluate::{evaluate, evaluate_backend_deltas, evaluate_ir_rerank, evaluate_multi_ir_model, evaluate_params, evaluate_store_formats, evaluate_with_audit, BackendEval, EvalOutcome, RerankEval, RerankSide, RetrievalAudit, StoreFormatEval};
pub use experiment::{run_experiment, run_experiment_on, CurvePoint, ExperimentOptions, ExperimentOutcome, ExperimentSpec};
pub use framework::{
    CheckedBatch, DegradeOptions, FittedUniMatch, RerankConfig, RetrieverKind, UniMatch,
    UniMatchConfig,
};
pub use pipeline::{MatchPipeline, QuerySource};
pub use unimatch_ann::{QuorumError, RowFormat, ShardHealth, ShardPolicy, StoreBacking};
pub use unimatch_parallel::Parallelism;
pub use grid::{grid_search, GridPoint, GridSpec};
pub use hyper::{Hyperparams, Pathway};
pub use persist::{
    embedding_checksum_of, load_checkpoint, load_checkpoint_with_format,
    load_checkpoint_with_format_and_retry, load_checkpoint_with_retry, load_item_store,
    load_model, load_model_and_store, load_model_and_store_with_retry, load_model_with_retry,
    model_from_json, model_to_json, save_checkpoint_with_table, save_model,
    save_model_with_marginals, table_path, RetryPolicy,
};
pub use prepare::PreparedData;
pub use serving::{ModelHandle, ServingState};

/// Serializes unit tests that arm the process-global fault plan (persist
/// retries, durable-training kills) — armed plans are process state, so
/// concurrent tests would observe each other's faults.
#[cfg(test)]
pub(crate) fn fault_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
