//! Parallel vs sequential kernel equivalence.
//!
//! Runs every parallelized forward/backward kernel twice — once under
//! `Parallelism::sequential()` and once with 4 forced workers and a work
//! threshold of 1 (so even these modest shapes split) — and compares all
//! outputs and input gradients. Row-split kernels must agree bitwise; the
//! conv1d weight gradient re-associates its cross-batch reduction when
//! parallel, so it gets a 1e-6 tolerance.
//!
//! The parallel configuration is process-global, so all assertions live in
//! one `#[test]`: cargo runs a binary's test functions concurrently, and
//! two functions installing different configurations would race.

use rand::{Rng, SeedableRng};
use unimatch_parallel::Parallelism;
use unimatch_tensor::{Graph, Tensor, Var};

fn rand_tensor(dims: &[usize], rng: &mut impl Rng) -> Tensor {
    Tensor::rand_uniform(dims, -1.0, 1.0, rng)
}

/// One kernel run: forward output plus the gradient of `mean(out²)` with
/// respect to every input.
fn run_kernel(
    inputs: &[Tensor],
    build: impl Fn(&mut Graph, &[Var]) -> Var,
) -> Vec<Vec<f32>> {
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.input(t.clone())).collect();
    let out = build(&mut g, &vars);
    let sq = g.mul(out, out);
    let loss = g.mean_all(sq);
    g.backward(loss);
    let mut results = vec![g.value(out).data().to_vec()];
    for &v in &vars {
        results.push(g.grad(v).expect("input gradient").data().to_vec());
    }
    results
}

/// Runs every parallelized kernel on the same seeded inputs.
fn run_all_kernels(seed: u64) -> Vec<Vec<Vec<f32>>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::new();

    // batch_matmul [4,5,6] @ [4,6,3]
    let a = rand_tensor(&[4, 5, 6], &mut rng);
    let b = rand_tensor(&[4, 6, 3], &mut rng);
    out.push(run_kernel(&[a, b], |g, v| g.batch_matmul(v[0], v[1])));

    // batch_matmul_transpose_b [4,5,6] @ [4,7,6]^T
    let a = rand_tensor(&[4, 5, 6], &mut rng);
    let b = rand_tensor(&[4, 7, 6], &mut rng);
    out.push(run_kernel(&[a, b], |g, v| g.batch_matmul_transpose_b(v[0], v[1])));

    // softmax / log_softmax / l2_normalize over [33, 16]
    let x = rand_tensor(&[33, 16], &mut rng);
    out.push(run_kernel(std::slice::from_ref(&x), |g, v| g.softmax(v[0])));
    out.push(run_kernel(std::slice::from_ref(&x), |g, v| g.log_softmax(v[0])));
    out.push(run_kernel(std::slice::from_ref(&x), |g, v| g.l2_normalize_rows(v[0], 1e-9)));

    // masked softmax, every row keeping a random non-empty subset
    let mask: Vec<f32> = {
        let mut m: Vec<f32> = (0..33 * 16).map(|_| f32::from(rng.gen_bool(0.7))).collect();
        for r in 0..33 {
            m[r * 16 + r % 16] = 1.0; // no fully-masked rows
        }
        m
    };
    out.push(run_kernel(&[x], move |g, v| g.masked_softmax(v[0], &mask)));

    // conv1d_same x[3,10,4] * w[3,4,5]
    let x = rand_tensor(&[3, 10, 4], &mut rng);
    let w = rand_tensor(&[3, 4, 5], &mut rng);
    out.push(run_kernel(&[x, w], |g, v| g.conv1d_same(v[0], v[1])));

    out
}

#[test]
fn forced_parallel_kernels_match_sequential() {
    Parallelism::sequential().install_global();
    let sequential = run_all_kernels(0x9e1);

    Parallelism::threads(4).with_min_work(1).install_global();
    let parallel = run_all_kernels(0x9e1);
    Parallelism::auto().install_global();

    assert_eq!(sequential.len(), parallel.len());
    for (k, (skr, pkr)) in sequential.iter().zip(&parallel).enumerate() {
        assert_eq!(skr.len(), pkr.len(), "kernel {k}: buffer count");
        for (b, (sb, pb)) in skr.iter().zip(pkr).enumerate() {
            assert_eq!(sb.len(), pb.len(), "kernel {k} buffer {b}: length");
            for (i, (s, p)) in sb.iter().zip(pb).enumerate() {
                assert!(
                    (s - p).abs() <= 1e-6,
                    "kernel {k} buffer {b} element {i}: sequential {s} vs parallel {p}"
                );
            }
        }
    }
}
