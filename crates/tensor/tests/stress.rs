//! Stress and edge-case tests for the tensor engine at realistic model
//! shapes, plus cross-checks of composite ops against naive definitions.

use rand::{Rng, SeedableRng};
use unimatch_tensor::{Graph, ParamSet, Tensor};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn matmul_matches_naive_on_odd_shapes() {
    let mut r = rng(1);
    for (m, k, n) in [(1, 1, 1), (1, 7, 3), (5, 1, 9), (13, 17, 11)] {
        let a = Tensor::rand_normal([m, k], 0.0, 1.0, &mut r);
        let b = Tensor::rand_normal([k, n], 0.0, 1.0, &mut r);
        let fast = a.matmul(&b);
        for i in 0..m {
            for j in 0..n {
                let naive: f32 = (0..k).map(|p| a.at(&[i, p]) * b.at(&[p, j])).sum();
                let got = fast.at(&[i, j]);
                assert!(
                    (naive - got).abs() < 1e-4 * (1.0 + naive.abs()),
                    "({m},{k},{n}) at [{i},{j}]: {got} vs {naive}"
                );
            }
        }
    }
}

#[test]
fn conv1d_matches_naive_definition() {
    let mut r = rng(2);
    let (b, l, din, dout, k) = (2, 7, 3, 4, 5);
    let x = Tensor::rand_normal([b, l, din], 0.0, 1.0, &mut r);
    let w = Tensor::rand_normal([k, din, dout], 0.0, 1.0, &mut r);
    let mut g = Graph::new();
    let xv = g.constant(x.clone());
    let wv = g.constant(w.clone());
    let y = g.conv1d_same(xv, wv);
    let half = (k / 2) as isize;
    for bi in 0..b {
        for t in 0..l {
            for o in 0..dout {
                let mut naive = 0.0f32;
                for kk in 0..k {
                    let src = t as isize + kk as isize - half;
                    if src < 0 || src >= l as isize {
                        continue;
                    }
                    for c in 0..din {
                        naive += x.at(&[bi, src as usize, c]) * w.at(&[kk, c, o]);
                    }
                }
                let got = g.value(y).at(&[bi, t, o]);
                assert!((naive - got).abs() < 1e-4, "[{bi},{t},{o}]: {got} vs {naive}");
            }
        }
    }
}

#[test]
fn batched_attention_matches_unbatched() {
    // batch_matmul over B slices must equal per-slice matmul
    let mut r = rng(3);
    let (bs, m, k, n) = (3, 4, 5, 6);
    let a = Tensor::rand_normal([bs, m, k], 0.0, 1.0, &mut r);
    let b = Tensor::rand_normal([bs, k, n], 0.0, 1.0, &mut r);
    let mut g = Graph::new();
    let av = g.constant(a.clone());
    let bv = g.constant(b.clone());
    let c = g.batch_matmul(av, bv);
    for s in 0..bs {
        let a_slice =
            Tensor::from_vec([m, k], a.data()[s * m * k..(s + 1) * m * k].to_vec());
        let b_slice =
            Tensor::from_vec([k, n], b.data()[s * k * n..(s + 1) * k * n].to_vec());
        let expect = a_slice.matmul(&b_slice);
        for i in 0..m {
            for j in 0..n {
                let got = g.value(c).at(&[s, i, j]);
                assert!((got - expect.at(&[i, j])).abs() < 1e-4);
            }
        }
    }
}

#[test]
fn deep_graph_backward_is_stable() {
    // 200 chained tanh layers: gradients vanish but must stay finite and
    // the tape must handle thousands of nodes.
    let mut ps = ParamSet::new();
    let x = ps.add("x", Tensor::full([4], 0.5));
    let mut g = Graph::new();
    let mut v = g.param(&ps, x);
    for _ in 0..200 {
        v = g.tanh(v);
    }
    let loss = g.sum_all(v);
    g.backward(loss);
    let grads = g.dense_grads();
    let grad = &grads[&x];
    assert!(grad.data().iter().all(|x| x.is_finite()));
    assert!(g.len() > 200);
}

#[test]
fn production_shape_training_step_smoke() {
    // the largest realistic step: B=256, L=36, d=16, vocab=20k
    let mut r = rng(4);
    let mut ps = ParamSet::new();
    let table = ps.add("emb", Tensor::rand_normal([20_000, 16], 0.0, 0.25, &mut r));
    let indices: Vec<u32> = (0..256 * 36).map(|_| r.gen_range(0..20_000)).collect();
    let mask: Vec<f32> = (0..256 * 36).map(|k| if k % 36 < 20 { 1.0 } else { 0.0 }).collect();
    let items: Vec<u32> = (0..256).map(|_| r.gen_range(0..20_000)).collect();

    let mut g = Graph::new();
    let e = g.embedding(&ps, table, &indices);
    let e = g.reshape(e, [256, 36, 16]);
    let pooled = g.mean_pool_masked(e, &mask);
    let users = g.l2_normalize_rows(pooled, 1e-12);
    let iv = g.embedding(&ps, table, &items);
    let iv = g.l2_normalize_rows(iv, 1e-12);
    let logits = g.matmul_transpose_b(users, iv);
    let logits = g.scale(logits, 1.0 / 0.1667);
    let ls = g.log_softmax(logits);
    let d = g.diag(ls);
    let m = g.mean_all(d);
    let loss = g.scale(m, -1.0);
    g.backward(loss);

    let sparse = g.sparse_grads();
    let touched = sparse.values().map(|s| s.touched()).sum::<usize>();
    assert!(touched > 1000, "sparse rows touched: {touched}");
    assert!(g.value(loss).item().is_finite());
}

#[test]
fn fully_masked_sequence_rows_are_neutral() {
    // pooling over a fully padded row must output zeros and propagate no
    // gradient into that row's positions
    let mut ps = ParamSet::new();
    let x = ps.add("x", Tensor::ones([2, 3, 2]));
    let mask = vec![1., 1., 1., 0., 0., 0.]; // row 1 fully masked
    let mut g = Graph::new();
    let xv = g.param(&ps, x);
    let pooled = g.mean_pool_masked(xv, &mask);
    assert_eq!(g.value(pooled).row(1), &[0.0, 0.0]);
    let sq = g.mul(pooled, pooled);
    let loss = g.sum_all(sq);
    g.backward(loss);
    let grads = g.dense_grads();
    let grad = &grads[&x];
    for pos in 3..6 {
        assert_eq!(grad.row(pos), &[0.0, 0.0], "masked position {pos} received gradient");
    }
}

#[test]
fn gradient_accumulation_order_does_not_matter() {
    // using a var twice in different subtrees must sum gradients exactly
    let mut ps = ParamSet::new();
    let x = ps.add("x", Tensor::vector(&[2.0]));
    let mut g = Graph::new();
    let xv = g.param(&ps, x);
    let a = g.scale(xv, 3.0);
    let b = g.mul(xv, xv);
    let sum = g.add(a, b);
    let loss = g.sum_all(sum);
    g.backward(loss);
    // d/dx (3x + x^2) = 3 + 2x = 7
    let grads = g.dense_grads();
    assert!((grads[&x].data()[0] - 7.0).abs() < 1e-5);
}

#[test]
fn extreme_temperature_logits_stay_stable() {
    // τ = 0.01 gives |logits| up to 100; log_softmax must not overflow
    let mut g = Graph::new();
    let x = g.input(Tensor::from_vec([2, 3], vec![100.0, -100.0, 0.0, 99.9, 100.0, -50.0]));
    let ls = g.log_softmax(x);
    assert!(g.value(ls).data().iter().all(|v| v.is_finite()));
    let d = g.pick_per_row(ls, &[0, 1]);
    let m = g.mean_all(d);
    let loss = g.scale(m, -1.0);
    g.backward(loss);
    assert!(g.grad(x).expect("grad").data().iter().all(|v| v.is_finite()));
}

#[test]
fn reshape_chains_preserve_gradients() {
    let mut ps = ParamSet::new();
    let x = ps.add("x", Tensor::rand_normal([2, 3, 4], 0.0, 1.0, &mut rng(5)));
    unimatch_tensor::check::gradcheck(&mut ps, 2e-2, 2e-2, |g, p| {
        let v = g.param(p, x);
        let a = g.reshape(v, [6, 4]);
        let b = g.transpose(a);
        let c = g.reshape(b, [2, 12]);
        let sq = g.mul(c, c);
        g.mean_all(sq)
    });
}
