//! Property-based tests for tensor kernels and graph invariants.

use proptest::prelude::*;
use unimatch_tensor::{Graph, Shape, Tensor};

fn small_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..6, 1usize..6).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f32..10.0, m * n).prop_map(move |v| (m, n, v))
    })
}

proptest! {
    #[test]
    fn shape_offset_is_bijective((m, n, _v) in small_matrix()) {
        let s = Shape::matrix(m, n);
        let mut seen = std::collections::HashSet::new();
        for i in 0..m {
            for j in 0..n {
                prop_assert!(seen.insert(s.offset(&[i, j])));
            }
        }
        prop_assert_eq!(seen.len(), s.numel());
    }

    #[test]
    fn transpose_is_involution((m, n, v) in small_matrix()) {
        let t = Tensor::from_vec([m, n], v);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_distributes_over_add(
        (m, k, a) in small_matrix(),
        extra in proptest::collection::vec(-10.0f32..10.0, 1..36),
    ) {
        // b, c share shape [k, n] with n derived from extra's length
        let n = (extra.len() % 5) + 1;
        let b = Tensor::from_vec([k, n], (0..k * n).map(|i| extra[i % extra.len()]).collect());
        let c = Tensor::from_vec([k, n], (0..k * n).map(|i| extra[(i * 7 + 3) % extra.len()]).collect());
        let a = Tensor::from_vec([m, k], a);
        let lhs = a.matmul(&b.zip(&c, |x, y| x + y));
        let rhs = a.matmul(&b).zip(&a.matmul(&c), |x, y| x + y);
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-2 * (1.0 + x.abs().max(y.abs())));
        }
    }

    #[test]
    fn softmax_rows_are_distributions((m, n, v) in small_matrix()) {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([m, n], v));
        let s = g.softmax(a);
        let t = g.value(s);
        for r in 0..m {
            let sum: f32 = t.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
            prop_assert!(t.row(r).iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn log_softmax_shift_invariant((m, n, v) in small_matrix(), shift in -50.0f32..50.0) {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([m, n], v.clone()));
        let shifted = g.constant(Tensor::from_vec([m, n], v.iter().map(|x| x + shift).collect()));
        let l1 = g.log_softmax(a);
        let l2 = g.log_softmax(shifted);
        for (x, y) in g.value(l1).data().iter().zip(g.value(l2).data().iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn l2_normalize_yields_unit_rows((m, n, v) in small_matrix()) {
        prop_assume!(v.iter().any(|x| x.abs() > 0.1));
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([m, n], v));
        let s = g.l2_normalize_rows(a, 1e-12);
        let t = g.value(s);
        for r in 0..m {
            let norm: f32 = t.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            // rows that were ~zero stay ~zero; others become unit
            prop_assert!(norm < 1e-3 || (norm - 1.0).abs() < 1e-3, "norm {norm}");
        }
    }

    #[test]
    fn backward_leaves_values_unchanged((m, n, v) in small_matrix()) {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec([m, n], v.clone()));
        let sq = g.mul(a, a);
        let loss = g.sum_all(sq);
        let before = g.value(sq).clone();
        g.backward(loss);
        prop_assert_eq!(g.value(sq), &before);
        // d(sum a^2)/da = 2a
        let grad = g.grad(a).expect("input grad");
        for (gv, xv) in grad.data().iter().zip(v.iter()) {
            prop_assert!((gv - 2.0 * xv).abs() < 1e-3);
        }
    }

    #[test]
    fn mean_pool_masked_bounded_by_extremes(v in proptest::collection::vec(-5.0f32..5.0, 12)) {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec([2, 3, 2], v.clone()));
        let mask = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let p = g.mean_pool_masked(x, &mask);
        let t = g.value(p);
        for b in 0..2 {
            for j in 0..2 {
                let vals: Vec<f32> = (0..3).map(|l| v[(b * 3 + l) * 2 + j]).collect();
                let lo = vals.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = vals.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let got = t.row(b)[j];
                prop_assert!(got >= lo - 1e-4 && got <= hi + 1e-4);
            }
        }
    }
}
