//! Finite-difference gradient checks for every differentiable op.
//!
//! Each test builds a small graph ending in a scalar loss and compares the
//! analytic backward gradients against central finite differences.

use rand::{Rng, SeedableRng};
use unimatch_tensor::check::gradcheck;
use unimatch_tensor::{Graph, ParamSet, Tensor, Var};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn param(ps: &mut ParamSet, name: &str, dims: &[usize], rng: &mut impl Rng) -> unimatch_tensor::ParamId {
    ps.add(name, Tensor::rand_uniform(dims, -0.9, 0.9, rng))
}

/// Standard harness: builds params, runs gradcheck with a shared tolerance.
fn check(ps: &mut ParamSet, build: impl FnMut(&mut Graph, &ParamSet) -> Var) {
    gradcheck(ps, 2e-2, 2e-2, build);
}

#[test]
fn grad_add_sub_mul() {
    let mut r = rng(1);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[3, 4], &mut r);
    let b = param(&mut ps, "b", &[3, 4], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let bv = g.param(p, b);
        let s = g.add(av, bv);
        let d = g.sub(s, bv);
        let m = g.mul(d, s);
        g.mean_all(m)
    });
}

#[test]
fn grad_scale_add_scalar() {
    let mut r = rng(2);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[5], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let s = g.scale(av, 3.0);
        let t = g.add_scalar(s, -0.5);
        let m = g.mul(t, t);
        g.sum_all(m)
    });
}

#[test]
fn grad_matmul() {
    let mut r = rng(3);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[3, 4], &mut r);
    let b = param(&mut ps, "b", &[4, 2], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let bv = g.param(p, b);
        let c = g.matmul(av, bv);
        let sq = g.mul(c, c);
        g.mean_all(sq)
    });
}

#[test]
fn grad_matmul_transpose_b() {
    let mut r = rng(4);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[3, 4], &mut r);
    let b = param(&mut ps, "b", &[5, 4], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let bv = g.param(p, b);
        let c = g.matmul_transpose_b(av, bv);
        let sq = g.mul(c, c);
        g.mean_all(sq)
    });
}

#[test]
fn grad_batch_matmul_both_kinds() {
    let mut r = rng(5);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[2, 3, 4], &mut r);
    let b = param(&mut ps, "b", &[2, 4, 3], &mut r);
    let c = param(&mut ps, "c", &[2, 5, 4], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let bv = g.param(p, b);
        let cv = g.param(p, c);
        let m1 = g.batch_matmul(av, bv); // [2,3,3]
        let m2 = g.batch_matmul_transpose_b(av, cv); // [2,3,5]
        let s1 = g.mean_all(m1);
        let sq = g.mul(m2, m2);
        let s2 = g.mean_all(sq);
        g.add(s1, s2)
    });
}

#[test]
fn grad_transpose_reshape() {
    let mut r = rng(6);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[3, 4], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let t = g.transpose(av);
        let rr = g.reshape(t, [2, 6]);
        let sq = g.mul(rr, rr);
        g.sum_all(sq)
    });
}

#[test]
fn grad_activations() {
    let mut r = rng(7);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[2, 5], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let s = g.sigmoid(av);
        let t = g.tanh(s);
        let e = g.exp(t);
        let m = g.mul(e, e);
        g.mean_all(m)
    });
}

#[test]
fn grad_relu_away_from_kink() {
    let mut r = rng(8);
    let mut ps = ParamSet::new();
    // Keep values away from 0 so finite differences are valid.
    let vals = Tensor::rand_uniform([3, 3], 0.2, 1.0, &mut r);
    let neg = Tensor::rand_uniform([3, 3], -1.0, -0.2, &mut r);
    let a = ps.add("a", vals.zip(&neg, |x, y| if x > 0.6 { y } else { x }));
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let rl = g.relu(av);
        let sq = g.mul(rl, rl);
        g.sum_all(sq)
    });
}

#[test]
fn grad_ln() {
    let mut r = rng(9);
    let mut ps = ParamSet::new();
    let a = ps.add("a", Tensor::rand_uniform([4], 0.5, 2.0, &mut r));
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let l = g.ln(av);
        g.sum_all(l)
    });
}

#[test]
fn grad_log_softmax_and_softmax() {
    let mut r = rng(10);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[3, 5], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let ls = g.log_softmax(av);
        let picked = g.pick_per_row(ls, &[0, 2, 4]);
        let s1 = g.mean_all(picked);
        let sm = g.softmax(av);
        let sq = g.mul(sm, sm);
        let s2 = g.mean_all(sq);
        g.add(s1, s2)
    });
}

#[test]
fn grad_masked_softmax() {
    let mut r = rng(11);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[2, 4], &mut r);
    let mask = vec![1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0];
    check(&mut ps, move |g, p| {
        let av = g.param(p, a);
        let sm = g.masked_softmax(av, &mask);
        let sq = g.mul(sm, sm);
        g.sum_all(sq)
    });
}

#[test]
fn grad_l2_normalize() {
    let mut r = rng(12);
    let mut ps = ParamSet::new();
    let a = ps.add("a", Tensor::rand_uniform([3, 4], 0.3, 1.0, &mut r));
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let n = g.l2_normalize_rows(av, 1e-12);
        let w = g.constant(Tensor::rand_uniform([3, 4], -1.0, 1.0, &mut rng(99)));
        let m = g.mul(n, w);
        g.sum_all(m)
    });
}

#[test]
fn grad_layer_norm() {
    let mut r = rng(13);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[2, 6], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let n = g.layer_norm(av, 1e-5);
        let w = g.constant(Tensor::rand_uniform([2, 6], -1.0, 1.0, &mut rng(98)));
        let m = g.mul(n, w);
        g.sum_all(m)
    });
}

#[test]
fn grad_row_broadcasts() {
    let mut r = rng(14);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[3, 4], &mut r);
    let b = param(&mut ps, "b", &[4], &mut r);
    let c = param(&mut ps, "c", &[4], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let bv = g.param(p, b);
        let cv = g.param(p, c);
        let s = g.add_row_broadcast(av, bv);
        let m = g.mul_row_broadcast(s, cv);
        let sq = g.mul(m, m);
        g.mean_all(sq)
    });
}

#[test]
fn grad_scale_rows_and_pick() {
    let mut r = rng(15);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[3, 4], &mut r);
    let s = param(&mut ps, "s", &[3], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let sv = g.param(p, s);
        let scaled = g.scale_rows(av, sv);
        let picked = g.pick_per_row(scaled, &[3, 1, 0]);
        let sq = g.mul(picked, picked);
        g.sum_all(sq)
    });
}

#[test]
fn grad_diag() {
    let mut r = rng(16);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[4, 4], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let d = g.diag(av);
        let sq = g.mul(d, d);
        g.sum_all(sq)
    });
}

#[test]
fn grad_mean_pool_masked() {
    let mut r = rng(17);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[2, 3, 4], &mut r);
    let mask = vec![1.0, 1.0, 0.0, 1.0, 0.0, 0.0];
    check(&mut ps, move |g, p| {
        let av = g.param(p, a);
        let pool = g.mean_pool_masked(av, &mask);
        let sq = g.mul(pool, pool);
        g.sum_all(sq)
    });
}

#[test]
fn grad_max_pool_masked() {
    let mut r = rng(18);
    let mut ps = ParamSet::new();
    // well-separated values so the argmax is stable under ±eps
    let mut vals = Tensor::zeros([1, 3, 2]);
    let noise = Tensor::rand_uniform([1, 3, 2], -0.05, 0.05, &mut r);
    for (i, v) in vals.data_mut().iter_mut().enumerate() {
        *v = (i as f32) * 0.7 + noise.data()[i];
    }
    let a = ps.add("a", vals);
    let mask = vec![1.0, 1.0, 1.0];
    check(&mut ps, move |g, p| {
        let av = g.param(p, a);
        let pool = g.max_pool_masked(av, &mask);
        let sq = g.mul(pool, pool);
        g.sum_all(sq)
    });
}

#[test]
fn grad_last_pool_slice_stack() {
    let mut r = rng(19);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[2, 3, 4], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let last = g.last_pool(av, &[2, 3]);
        let t0 = g.slice_time(av, 0);
        let t2 = g.slice_time(av, 2);
        let st = g.stack_time(&[t0, last, t2]);
        let sq = g.mul(st, st);
        g.mean_all(sq)
    });
}

#[test]
fn grad_weighted_sum_pool() {
    let mut r = rng(20);
    let mut ps = ParamSet::new();
    let x = param(&mut ps, "x", &[2, 3, 4], &mut r);
    let w = param(&mut ps, "w", &[2, 3], &mut r);
    check(&mut ps, |g, p| {
        let xv = g.param(p, x);
        let wv = g.param(p, w);
        let pool = g.weighted_sum_pool(wv, xv);
        let sq = g.mul(pool, pool);
        g.sum_all(sq)
    });
}

#[test]
fn grad_conv1d_same() {
    let mut r = rng(21);
    let mut ps = ParamSet::new();
    let x = param(&mut ps, "x", &[2, 5, 3], &mut r);
    let w = param(&mut ps, "w", &[3, 3, 2], &mut r);
    check(&mut ps, |g, p| {
        let xv = g.param(p, x);
        let wv = g.param(p, w);
        let y = g.conv1d_same(xv, wv);
        let sq = g.mul(y, y);
        g.mean_all(sq)
    });
}

#[test]
fn grad_conv1d_same_pointwise_kernel() {
    // k = 1 degenerates to a per-position linear map — no padding taps at
    // all, the cheapest path through the conv kernel loop.
    let mut r = rng(26);
    let mut ps = ParamSet::new();
    let x = param(&mut ps, "x", &[2, 4, 3], &mut r);
    let w = param(&mut ps, "w", &[1, 3, 2], &mut r);
    check(&mut ps, |g, p| {
        let xv = g.param(p, x);
        let wv = g.param(p, w);
        let y = g.conv1d_same(xv, wv);
        let sq = g.mul(y, y);
        g.mean_all(sq)
    });
}

#[test]
fn grad_conv1d_same_wide_kernel_overhangs_sequence() {
    // k = 5 on L = 4: every output position has taps falling off at least
    // one edge, so the zero-padding branch of the backward pass is
    // exercised at both boundaries simultaneously.
    let mut r = rng(27);
    let mut ps = ParamSet::new();
    let x = param(&mut ps, "x", &[2, 4, 2], &mut r);
    let w = param(&mut ps, "w", &[5, 2, 3], &mut r);
    check(&mut ps, |g, p| {
        let xv = g.param(p, x);
        let wv = g.param(p, w);
        let y = g.conv1d_same(xv, wv);
        let sq = g.mul(y, y);
        g.mean_all(sq)
    });
}

#[test]
#[should_panic(expected = "odd kernel size")]
fn conv1d_same_rejects_even_kernels() {
    let mut r = rng(28);
    let mut ps = ParamSet::new();
    let x = param(&mut ps, "x", &[1, 4, 2], &mut r);
    let w = param(&mut ps, "w", &[2, 2, 2], &mut r);
    let mut g = Graph::new();
    let xv = g.param(&ps, x);
    let wv = g.param(&ps, w);
    g.conv1d_same(xv, wv);
}

#[test]
fn grad_mean_pool_with_fully_masked_row() {
    // A batch row whose mask is all zeros contributes nothing to the
    // output (and must receive exactly zero gradient — not NaN from a
    // 0/0 division).
    let mut r = rng(29);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[3, 2, 4], &mut r);
    let mask = vec![1.0, 0.0, /* row 1 fully masked */ 0.0, 0.0, 1.0, 1.0];
    check(&mut ps, move |g, p| {
        let av = g.param(p, a);
        let pool = g.mean_pool_masked(av, &mask);
        let sq = g.mul(pool, pool);
        g.sum_all(sq)
    });
}

#[test]
fn grad_max_pool_with_fully_masked_and_single_valid_rows() {
    let mut r = rng(30);
    // Well-separated values keep the argmax stable under ±eps probes.
    let mut vals = Tensor::zeros([3, 3, 2]);
    let noise = Tensor::rand_uniform([3, 3, 2], -0.05, 0.05, &mut r);
    for (i, v) in vals.data_mut().iter_mut().enumerate() {
        *v = (i as f32) * 0.7 + noise.data()[i];
    }
    let mut ps = ParamSet::new();
    let a = ps.add("a", vals);
    // row 0: one valid position, row 1: fully masked, row 2: all valid
    let mask = vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
    check(&mut ps, move |g, p| {
        let av = g.param(p, a);
        let pool = g.max_pool_masked(av, &mask);
        let sq = g.mul(pool, pool);
        g.sum_all(sq)
    });
}

#[test]
fn grad_last_pool_boundary_lengths() {
    // lengths hit both extremes: 1 (first position) and L (last position).
    let mut r = rng(31);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[2, 3, 4], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let last = g.last_pool(av, &[1, 3]);
        let sq = g.mul(last, last);
        g.sum_all(sq)
    });
}

#[test]
fn grad_conv_pool_composite_chain() {
    // conv → layer_norm → masked mean pool → weighted residual: the kind
    // of stacked sequence encoder the models crate builds, checked as one
    // graph so cross-op gradient flow is verified, not just each op alone.
    let mut r = rng(32);
    let mut ps = ParamSet::new();
    let x = param(&mut ps, "x", &[2, 4, 3], &mut r);
    let w = param(&mut ps, "w", &[3, 3, 3], &mut r);
    let mix = param(&mut ps, "mix", &[2, 3], &mut r);
    let mask = vec![1.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0];
    gradcheck(&mut ps, 3e-2, 3e-2, move |g, p| {
        let xv = g.param(p, x);
        let wv = g.param(p, w);
        let conv = g.conv1d_same(xv, wv);
        let res = g.add(conv, xv);
        let flat = g.reshape(res, [8, 3]);
        let normed = g.layer_norm(flat, 1e-5);
        let seq = g.reshape(normed, [2, 4, 3]);
        let pooled = g.mean_pool_masked(seq, &mask);
        let mv = g.param(p, mix);
        let weighted = g.mul(pooled, mv);
        let sq = g.mul(weighted, weighted);
        g.mean_all(sq)
    });
}

#[test]
fn grad_concat_last() {
    let mut r = rng(22);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[3, 2], &mut r);
    let b = param(&mut ps, "b", &[3, 4], &mut r);
    check(&mut ps, |g, p| {
        let av = g.param(p, a);
        let bv = g.param(p, b);
        let c = g.concat_last(av, bv);
        let sq = g.mul(c, c);
        g.sum_all(sq)
    });
}

#[test]
fn grad_embedding_sparse() {
    let mut r = rng(23);
    let mut ps = ParamSet::new();
    let table = ps.add("emb", Tensor::rand_uniform([6, 3], -0.9, 0.9, &mut r));
    check(&mut ps, |g, p| {
        // repeated index 2 exercises sparse accumulation
        let e = g.embedding(p, table, &[2, 0, 2, 5]);
        let sq = g.mul(e, e);
        g.sum_all(sq)
    });
}

#[test]
fn grad_param_reused_twice_accumulates() {
    let mut r = rng(24);
    let mut ps = ParamSet::new();
    let a = param(&mut ps, "a", &[2, 2], &mut r);
    check(&mut ps, |g, p| {
        let a1 = g.param(p, a);
        let a2 = g.param(p, a);
        let s = g.mul(a1, a2);
        g.sum_all(s)
    });
}

#[test]
fn grad_two_tower_similarity_pipeline() {
    // An end-to-end miniature of the UniMatch forward pass: embeddings →
    // mean pool → l2 norm → temperature-scaled in-batch logits → log-softmax
    // diagonal NLL. If this gradient checks, the whole training path does.
    let mut r = rng(25);
    let mut ps = ParamSet::new();
    let table = ps.add("emb", Tensor::rand_uniform([8, 4], -0.5, 0.5, &mut r));
    let proj = ps.add("proj", Tensor::rand_uniform([4, 4], -0.5, 0.5, &mut r));
    let mask = vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0];
    gradcheck(&mut ps, 3e-2, 3e-2, move |g, p| {
        let seq = g.embedding(p, table, &[1, 2, 3, 4, 0, 0]);
        let seq = g.reshape(seq, [2, 3, 4]);
        let pooled = g.mean_pool_masked(seq, &mask);
        let pv = g.param(p, proj);
        let users = g.matmul(pooled, pv);
        let users = g.l2_normalize_rows(users, 1e-12);
        let items = g.embedding(p, table, &[5, 6]);
        let items = g.l2_normalize_rows(items, 1e-12);
        let logits = g.matmul_transpose_b(users, items);
        let logits = g.scale(logits, 1.0 / 0.2);
        let ls = g.log_softmax(logits);
        let d = g.diag(ls);
        let nll = g.mean_all(d);
        g.scale(nll, -1.0)
    });
}
