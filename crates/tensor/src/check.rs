//! Gradient-checking utilities shared by the test suites of every crate
//! that builds graphs on top of this engine.

use crate::graph::{Graph, Var};
use crate::param::{ParamId, ParamSet};
use crate::tensor::Tensor;

/// Numeric gradient of `loss_fn` with respect to parameter `id`, by central
/// finite differences. `loss_fn` must build a fresh graph from the given
/// `ParamSet` and return the scalar loss value.
pub fn finite_diff_param(
    params: &mut ParamSet,
    id: ParamId,
    eps: f32,
    mut loss_fn: impl FnMut(&ParamSet) -> f32,
) -> Tensor {
    let n = params.get(id).shape().numel();
    let shape = params.get(id).shape().clone();
    let mut grad = vec![0.0f32; n];
    for (i, g) in grad.iter_mut().enumerate() {
        let orig = params.get(id).data()[i];
        params.get_mut(id).data_mut()[i] = orig + eps;
        let up = loss_fn(params);
        params.get_mut(id).data_mut()[i] = orig - eps;
        let down = loss_fn(params);
        params.get_mut(id).data_mut()[i] = orig;
        *g = (up - down) / (2.0 * eps);
    }
    Tensor::from_vec(shape, grad)
}

/// Analytic gradient of every parameter of a single-loss graph, as
/// `(dense, sparse-as-dense)` merged per parameter.
pub fn analytic_grads(
    params: &ParamSet,
    build: impl FnOnce(&mut Graph, &ParamSet) -> Var,
) -> std::collections::HashMap<ParamId, Tensor> {
    let mut g = Graph::new();
    let loss = build(&mut g, params);
    g.backward(loss);
    let mut out = g.dense_grads();
    for (&id, sg) in g.sparse_grads() {
        let vocab = params.get(id).shape().dim(0);
        let dense = sg.to_dense(vocab);
        out.entry(id)
            .and_modify(|t| t.axpy(1.0, &dense))
            .or_insert(dense);
    }
    out
}

/// Asserts two tensors agree elementwise within a combined absolute /
/// relative tolerance, with a helpful failure message.
pub fn assert_close(actual: &Tensor, expected: &Tensor, atol: f32, rtol: f32, what: &str) {
    assert_eq!(actual.shape(), expected.shape(), "{what}: shape mismatch");
    for (i, (&a, &e)) in actual.data().iter().zip(expected.data().iter()).enumerate() {
        let tol = atol + rtol * e.abs().max(a.abs());
        assert!(
            (a - e).abs() <= tol,
            "{what}: element {i} differs: analytic {a} vs numeric {e} (tol {tol})"
        );
    }
}

/// End-to-end gradient check: builds the graph twice per perturbed entry,
/// comparing analytic backward gradients against central differences for
/// every parameter in `params`.
pub fn gradcheck(
    params: &mut ParamSet,
    atol: f32,
    rtol: f32,
    mut build: impl FnMut(&mut Graph, &ParamSet) -> Var,
) {
    let analytic = analytic_grads(params, &mut build);
    for id in params.ids().collect::<Vec<_>>() {
        let numeric = finite_diff_param(params, id, 1e-2, |p| {
            let mut g = Graph::new();
            let loss = build(&mut g, p);
            g.value(loss).item()
        });
        let zero = Tensor::zeros(params.get(id).shape().clone());
        let a = analytic.get(&id).unwrap_or(&zero);
        let name = params.name(id).to_owned();
        assert_close(a, &numeric, atol, rtol, &format!("grad of {name}"));
    }
}
