//! Neural-network forward ops: activations, softmaxes, normalizations,
//! broadcasts, batched matmuls, convolution.
//!
//! The kernels that dominate training time — the batched matmuls, the
//! row softmaxes, L2 row normalization and the 1-D convolution — split
//! their work over rows / batch entries via [`unimatch_parallel`] when the
//! workload is large enough (see `docs/PERFORMANCE.md` for the cost
//! model). Every split happens on a row boundary with no cross-row
//! accumulation, so parallel results are bitwise identical to sequential
//! ones.

use crate::graph::{Graph, Op, Var};

use crate::tensor::{dot, Tensor};
use unimatch_parallel::par_chunk_rows;

impl Graph {
    fn unary(&mut self, a: Var, op: fn(Var) -> Op, f: fn(f32) -> f32) -> Var {
        let value = self.value(a).map(f);
        let rg = self.requires(a);
        self.push(value, op(a), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        self.unary(a, Op::Sigmoid, |x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        self.unary(a, Op::Tanh, f32::tanh)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        self.unary(a, Op::Relu, |x| x.max(0.0))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        self.unary(a, Op::Exp, f32::exp)
    }

    /// Elementwise natural log.
    pub fn ln(&mut self, a: Var) -> Var {
        self.unary(a, Op::Ln, f32::ln)
    }

    /// Numerically stable log-softmax over the last axis.
    pub fn log_softmax(&mut self, a: Var) -> Var {
        let t = self.value(a);
        let rows = t.shape().outer_numel();
        let d = t.shape().last_dim();
        let src = t.data();
        let mut data = vec![0.0f32; rows * d];
        // ~8 scalar ops per element (exp dominates)
        par_chunk_rows(&mut data, rows, rows * d * 8, |start, chunk| {
            for (i, out_row) in chunk.chunks_mut(d).enumerate() {
                let row = &src[(start + i) * d..(start + i + 1) * d];
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
                for (o, &x) in out_row.iter_mut().zip(row) {
                    *o = x - lse;
                }
            }
        });
        let value = Tensor::from_vec(t.shape().dims(), data);
        let rg = self.requires(a);
        self.push(value, Op::LogSoftmax(a), rg)
    }

    /// Softmax over the last axis.
    pub fn softmax(&mut self, a: Var) -> Var {
        self.softmax_impl(a, None)
    }

    /// Softmax over the last axis with a 0/1 keep-mask (same total length as
    /// the input). Masked positions receive probability exactly 0; rows with
    /// an all-zero mask produce a uniform-over-nothing row of zeros.
    pub fn masked_softmax(&mut self, a: Var, mask: &[f32]) -> Var {
        assert_eq!(mask.len(), self.value(a).shape().numel(), "mask length mismatch");
        self.softmax_impl(a, Some(mask.to_vec()))
    }

    fn softmax_impl(&mut self, a: Var, mask: Option<Vec<f32>>) -> Var {
        let t = self.value(a);
        let rows = t.shape().outer_numel();
        let d = t.shape().last_dim();
        let src = t.data();
        let mask_ref = mask.as_deref();
        let mut data = vec![0.0f32; rows * d];
        // ~8 scalar ops per element (exp dominates)
        par_chunk_rows(&mut data, rows, rows * d * 8, |start, chunk| {
            for (i, out_row) in chunk.chunks_mut(d).enumerate() {
                let r = start + i;
                let row = &src[r * d..(r + 1) * d];
                let mrow = mask_ref.map(|m| &m[r * d..(r + 1) * d]);
                let keep = |j: usize| mrow.is_none_or(|m| m[j] > 0.5);
                let m = (0..d)
                    .filter(|&j| keep(j))
                    .map(|j| row[j])
                    .fold(f32::NEG_INFINITY, f32::max);
                if m == f32::NEG_INFINITY {
                    continue; // fully masked row stays zero
                }
                let mut z = 0.0;
                for j in 0..d {
                    if keep(j) {
                        let e = (row[j] - m).exp();
                        out_row[j] = e;
                        z += e;
                    }
                }
                for o in out_row.iter_mut() {
                    *o /= z;
                }
            }
        });
        let value = Tensor::from_vec(t.shape().dims(), data);
        let rg = self.requires(a);
        self.push(value, Op::Softmax(a, mask), rg)
    }

    /// L2-normalizes each row (last axis): `x / max(‖x‖₂, eps)`.
    pub fn l2_normalize_rows(&mut self, a: Var, eps: f32) -> Var {
        let t = self.value(a);
        let rows = t.shape().outer_numel();
        let d = t.shape().last_dim();
        let src = t.data();
        let mut data = vec![0.0f32; rows * d];
        // ~3 scalar ops per element (square, add, divide)
        par_chunk_rows(&mut data, rows, rows * d * 3, |start, chunk| {
            for (i, out_row) in chunk.chunks_mut(d).enumerate() {
                let row = &src[(start + i) * d..(start + i + 1) * d];
                let n = dot(row, row).sqrt().max(eps);
                for (o, &x) in out_row.iter_mut().zip(row) {
                    *o = x / n;
                }
            }
        });
        let value = Tensor::from_vec(t.shape().dims(), data);
        let rg = self.requires(a);
        self.push(value, Op::L2NormalizeRows(a, eps), rg)
    }

    /// Layer normalization over the last axis (zero mean, unit variance; no
    /// affine — compose with [`Graph::mul_row_broadcast`] /
    /// [`Graph::add_row_broadcast`] for gain and bias).
    pub fn layer_norm(&mut self, a: Var, eps: f32) -> Var {
        let t = self.value(a);
        let rows = t.shape().outer_numel();
        let d = t.shape().last_dim();
        let mut data = Vec::with_capacity(rows * d);
        for r in 0..rows {
            let row = t.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + eps).sqrt();
            data.extend(row.iter().map(|&x| (x - mean) * inv));
        }
        let value = Tensor::from_vec(t.shape().dims(), data);
        let rg = self.requires(a);
        self.push(value, Op::LayerNorm { x: a, eps }, rg)
    }

    /// Broadcast-add a `[d]` vector to every row of an `[..., d]` tensor.
    pub fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(tb.shape().rank(), 1, "broadcast operand must be rank 1");
        assert_eq!(ta.shape().last_dim(), tb.shape().dim(0), "broadcast width mismatch");
        let rows = ta.shape().outer_numel();
        let d = ta.shape().last_dim();
        let mut data = Vec::with_capacity(rows * d);
        for r in 0..rows {
            data.extend(ta.row(r).iter().zip(tb.data().iter()).map(|(&x, &y)| x + y));
        }
        let value = Tensor::from_vec(ta.shape().dims(), data);
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::AddRowBroadcast(a, b), rg)
    }

    /// Broadcast-multiply every row of an `[..., d]` tensor by a `[d]` vector.
    pub fn mul_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(tb.shape().rank(), 1, "broadcast operand must be rank 1");
        assert_eq!(ta.shape().last_dim(), tb.shape().dim(0), "broadcast width mismatch");
        let rows = ta.shape().outer_numel();
        let d = ta.shape().last_dim();
        let mut data = Vec::with_capacity(rows * d);
        for r in 0..rows {
            data.extend(ta.row(r).iter().zip(tb.data().iter()).map(|(&x, &y)| x * y));
        }
        let value = Tensor::from_vec(ta.shape().dims(), data);
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::MulRowBroadcast(a, b), rg)
    }

    /// Scales row `r` (of the `[R, d]` flattened view) by `s[r]`.
    pub fn scale_rows(&mut self, a: Var, s: Var) -> Var {
        let (ta, ts) = (self.value(a), self.value(s));
        assert_eq!(ts.shape().rank(), 1, "scale vector must be rank 1");
        let rows = ta.shape().outer_numel();
        assert_eq!(rows, ts.shape().dim(0), "scale_rows length mismatch");
        let d = ta.shape().last_dim();
        let mut data = Vec::with_capacity(rows * d);
        for r in 0..rows {
            let c = ts.data()[r];
            data.extend(ta.row(r).iter().map(|&x| x * c));
        }
        let value = Tensor::from_vec(ta.shape().dims(), data);
        let rg = self.requires(a) || self.requires(s);
        self.push(value, Op::ScaleRows(a, s), rg)
    }

    /// `out[r] = a[r, idx[r]]` over the `[R, d]` flattened view.
    pub fn pick_per_row(&mut self, a: Var, indices: &[usize]) -> Var {
        let t = self.value(a);
        let rows = t.shape().outer_numel();
        assert_eq!(indices.len(), rows, "pick_per_row index count mismatch");
        let d = t.shape().last_dim();
        let data: Vec<f32> = indices
            .iter()
            .enumerate()
            .map(|(r, &j)| {
                assert!(j < d, "pick index {j} out of width {d}");
                t.row(r)[j]
            })
            .collect();
        let value = Tensor::from_vec([rows], data);
        let rg = self.requires(a);
        self.push(value, Op::PickPerRow(a, indices.to_vec()), rg)
    }

    /// Diagonal of a square matrix.
    pub fn diag(&mut self, a: Var) -> Var {
        let t = self.value(a);
        assert_eq!(t.shape().rank(), 2, "diag requires a matrix");
        let n = t.shape().rows();
        assert_eq!(n, t.shape().cols(), "diag requires a square matrix");
        let data: Vec<f32> = (0..n).map(|i| t.at(&[i, i])).collect();
        let value = Tensor::from_vec([n], data);
        let rg = self.requires(a);
        self.push(value, Op::Diag(a), rg)
    }

    /// Batched matmul `a[B,m,k] @ b[B,k,n] -> [B,m,n]`.
    pub fn batch_matmul(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape().rank(), 3, "batch_matmul lhs must be rank 3");
        assert_eq!(tb.shape().rank(), 3, "batch_matmul rhs must be rank 3");
        let (bs, m, k) = (ta.shape().dim(0), ta.shape().dim(1), ta.shape().dim(2));
        let (bs2, k2, n) = (tb.shape().dim(0), tb.shape().dim(1), tb.shape().dim(2));
        assert_eq!(bs, bs2, "batch size mismatch");
        assert_eq!(k, k2, "inner dim mismatch");
        let (da, db) = (ta.data(), tb.data());
        let mut data = vec![0.0f32; bs * m * n];
        // 2 flops (mul + add) per inner-product element
        par_chunk_rows(&mut data, bs, bs * m * n * k * 2, |start, chunk| {
            for (i_s, out_s) in chunk.chunks_mut(m * n).enumerate() {
                let s = start + i_s;
                for i in 0..m {
                    let a_row = &da[s * m * k + i * k..s * m * k + (i + 1) * k];
                    let o_row = &mut out_s[i * n..(i + 1) * n];
                    for (p, &av) in a_row.iter().enumerate() {
                        let b_row = &db[s * k * n + p * n..s * k * n + (p + 1) * n];
                        for (o, &bv) in o_row.iter_mut().zip(b_row) {
                            *o += av * bv;
                        }
                    }
                }
            }
        });
        let value = Tensor::from_vec([bs, m, n], data);
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::BatchMatmul(a, b), rg)
    }

    /// Batched matmul against transposed right operand:
    /// `a[B,m,k] @ b[B,n,k]^T -> [B,m,n]` (attention scores).
    pub fn batch_matmul_transpose_b(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape().rank(), 3);
        assert_eq!(tb.shape().rank(), 3);
        let (bs, m, k) = (ta.shape().dim(0), ta.shape().dim(1), ta.shape().dim(2));
        let (bs2, n, k2) = (tb.shape().dim(0), tb.shape().dim(1), tb.shape().dim(2));
        assert_eq!(bs, bs2, "batch size mismatch");
        assert_eq!(k, k2, "inner dim mismatch");
        let (da, db) = (ta.data(), tb.data());
        let mut data = vec![0.0f32; bs * m * n];
        // 2 flops (mul + add) per inner-product element
        par_chunk_rows(&mut data, bs, bs * m * n * k * 2, |start, chunk| {
            for (i_s, out_s) in chunk.chunks_mut(m * n).enumerate() {
                let s = start + i_s;
                for i in 0..m {
                    let a_row = &da[s * m * k + i * k..s * m * k + (i + 1) * k];
                    for j in 0..n {
                        let b_row = &db[s * n * k + j * k..s * n * k + (j + 1) * k];
                        out_s[i * n + j] = dot(a_row, b_row);
                    }
                }
            }
        });
        let value = Tensor::from_vec([bs, m, n], data);
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::BatchMatmulTransB(a, b), rg)
    }

    /// Same-padded 1-D convolution along the sequence axis:
    /// `x[B,L,din] * w[k,din,dout] -> [B,L,dout]` with zero padding of
    /// `(k-1)/2` on each side (odd `k` required so "same" is exact).
    pub fn conv1d_same(&mut self, x: Var, w: Var) -> Var {
        let (tx, tw) = (self.value(x), self.value(w));
        assert_eq!(tx.shape().rank(), 3, "conv input must be [B,L,din]");
        assert_eq!(tw.shape().rank(), 3, "conv weight must be [k,din,dout]");
        let (bs, l, din) = (tx.shape().dim(0), tx.shape().dim(1), tx.shape().dim(2));
        let (k, din2, dout) = (tw.shape().dim(0), tw.shape().dim(1), tw.shape().dim(2));
        assert_eq!(din, din2, "conv channel mismatch");
        assert_eq!(k % 2, 1, "conv1d_same requires odd kernel size, got {k}");
        let half = k / 2;
        let (dx, dw) = (tx.data(), tw.data());
        let mut data = vec![0.0f32; bs * l * dout];
        // 2 flops per (t, kk, c, o) tap; the zero-skip makes this an upper bound
        par_chunk_rows(&mut data, bs, bs * l * dout * k * din * 2, |start, chunk| {
            for (i_b, out_b) in chunk.chunks_mut(l * dout).enumerate() {
                let b = start + i_b;
                for t in 0..l {
                    let out = &mut out_b[t * dout..(t + 1) * dout];
                    for kk in 0..k {
                        let src = t as isize + kk as isize - half as isize;
                        if src < 0 || src >= l as isize {
                            continue;
                        }
                        let xin = &dx[(b * l + src as usize) * din..(b * l + src as usize + 1) * din];
                        for (c, &xv) in xin.iter().enumerate() {
                            if xv == 0.0 {
                                continue;
                            }
                            let wrow = &dw[(kk * din + c) * dout..(kk * din + c + 1) * dout];
                            for (o, &wv) in out.iter_mut().zip(wrow) {
                                *o += xv * wv;
                            }
                        }
                    }
                }
            }
        });
        let value = Tensor::from_vec([bs, l, dout], data);
        let rg = self.requires(x) || self.requires(w);
        self.push(value, Op::Conv1dSame { x, w }, rg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([2, 3], vec![1., 2., 3., -1., 0., 1.]));
        let s = g.softmax(a);
        let t = g.value(s);
        assert!((t.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((t.row(1).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([1, 4], vec![0.5, -2.0, 3.0, 1.0]));
        let ls = g.log_softmax(a);
        let s = g.softmax(a);
        let logs: Vec<f32> = g.value(s).data().iter().map(|x| x.ln()).collect();
        close(g.value(ls).data(), &logs, 1e-5);
    }

    #[test]
    fn masked_softmax_zeroes_masked() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([1, 4], vec![10.0, 1.0, 2.0, 3.0]));
        let s = g.masked_softmax(a, &[0.0, 1.0, 1.0, 1.0]);
        let t = g.value(s);
        assert_eq!(t.data()[0], 0.0);
        assert!((t.data().iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn l2_normalize_unit_norm() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([2, 2], vec![3., 4., 0.3, 0.4]));
        let n = g.l2_normalize_rows(a, 1e-12);
        let t = g.value(n);
        close(t.row(0), &[0.6, 0.8], 1e-6);
        close(t.row(1), &[0.6, 0.8], 1e-6);
    }

    #[test]
    fn layer_norm_moments() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([1, 4], vec![1., 2., 3., 4.]));
        let n = g.layer_norm(a, 1e-6);
        let row = g.value(n).data();
        let mean = row.iter().sum::<f32>() / 4.0;
        let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn pick_and_diag() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]));
        let d = g.diag(a);
        assert_eq!(g.value(d).data(), &[1., 4.]);
        let p = g.pick_per_row(a, &[1, 0]);
        assert_eq!(g.value(p).data(), &[2., 3.]);
    }

    #[test]
    fn batch_matmul_matches_per_slice() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([2, 1, 2], vec![1., 2., 3., 4.]));
        let b = g.constant(Tensor::from_vec([2, 2, 1], vec![5., 6., 7., 8.]));
        let c = g.batch_matmul(a, b);
        assert_eq!(g.value(c).data(), &[17., 53.]);
    }

    #[test]
    fn conv1d_identity_kernel() {
        let mut g = Graph::new();
        // kernel size 1, identity channel map => output equals input
        let x = g.constant(Tensor::from_vec([1, 3, 2], vec![1., 2., 3., 4., 5., 6.]));
        let w = g.constant(Tensor::from_vec([1, 2, 2], vec![1., 0., 0., 1.]));
        let y = g.conv1d_same(x, w);
        assert_eq!(g.value(y).data(), g.value(x).data());
    }

    #[test]
    fn conv1d_averaging_kernel_pads_with_zero() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec([1, 3, 1], vec![1., 2., 3.]));
        let w = g.constant(Tensor::from_vec([3, 1, 1], vec![1., 1., 1.]));
        let y = g.conv1d_same(x, w);
        assert_eq!(g.value(y).data(), &[3., 6., 5.]);
    }
}
