//! Shape algebra for dense row-major tensors.
//!
//! The engine supports rank 1–3 tensors, which is all the UniMatch models
//! need: vectors (biases, marginals), matrices (weights, logits) and
//! `[batch, seq, dim]` activations.

use std::fmt;

/// The dimensions of a tensor, row-major (last axis contiguous).
#[derive(Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from its dimensions. Every dimension must be non-zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "zero-sized dimensions are not supported: {dims:?}"
        );
        Shape(dims.to_vec())
    }

    /// A rank-1 shape.
    pub fn vector(n: usize) -> Self {
        Shape::new(&[n])
    }

    /// A rank-2 shape.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape::new(&[rows, cols])
    }

    /// A rank-3 shape (`[batch, seq, dim]` in model code).
    pub fn cube(a: usize, b: usize, c: usize) -> Self {
        Shape::new(&[a, b, c])
    }

    /// The dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// The number of axes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Size of axis `i` (panics if out of range).
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Number of rows of a rank-2 shape.
    pub fn rows(&self) -> usize {
        assert_eq!(self.rank(), 2, "rows() requires a matrix, got {self}");
        self.0[0]
    }

    /// Number of columns of a rank-2 shape.
    pub fn cols(&self) -> usize {
        assert_eq!(self.rank(), 2, "cols() requires a matrix, got {self}");
        self.0[1]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-index.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch for {self}");
        let strides = self.strides();
        index
            .iter()
            .zip(self.0.iter())
            .zip(strides.iter())
            .map(|((&ix, &dim), &st)| {
                assert!(ix < dim, "index {ix} out of bounds for dim {dim} in {self}");
                ix * st
            })
            .sum()
    }

    /// The last axis size.
    pub fn last_dim(&self) -> usize {
        *self.0.last().expect("non-empty shape")
    }

    /// All axes but the last, multiplied together — the number of "rows" when
    /// a tensor is viewed as a 2D matrix over its last axis.
    pub fn outer_numel(&self) -> usize {
        self.numel() / self.last_dim()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::cube(2, 3, 4);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.last_dim(), 4);
        assert_eq!(s.outer_numel(), 6);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::cube(2, 3, 4).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::matrix(5, 7).strides(), vec![7, 1]);
        assert_eq!(Shape::vector(9).strides(), vec![1]);
    }

    #[test]
    fn offset_round_trip() {
        let s = Shape::cube(2, 3, 4);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[1, 0, 2]), 14);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_bounds_checked() {
        Shape::matrix(2, 2).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_dim_rejected() {
        Shape::new(&[3, 0]);
    }

    #[test]
    fn display() {
        assert_eq!(Shape::cube(2, 3, 4).to_string(), "[2x3x4]");
    }
}
