//! Weight initialization schemes.

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` matrix.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform([fan_in, fan_out], -limit, limit, rng)
}

/// Xavier/Glorot uniform for an arbitrary shape, treating the first axis as
/// fan-in and the product of the rest as fan-out (used by conv kernels).
pub fn xavier_uniform_shaped(shape: impl Into<Shape>, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let fan_in = shape.dim(0).max(1);
    let fan_out = shape.numel() / fan_in;
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -limit, limit, rng)
}

/// Small-Gaussian initialization for embedding tables (`σ = 1/√d`), the
/// standard choice for retrieval models where logits are dot products.
pub fn embedding_normal(vocab: usize, dim: usize, rng: &mut impl Rng) -> Tensor {
    Tensor::rand_normal([vocab, dim], 0.0, 1.0 / (dim as f32).sqrt(), rng)
}

/// Orthogonal-ish recurrent weight init: scaled Gaussian (full QR is not
/// worth the code for d = 16 hidden sizes).
pub fn recurrent_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    Tensor::rand_normal([rows, cols], 0.0, 1.0 / (cols as f32).sqrt(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_limit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = xavier_uniform(64, 64, &mut rng);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn embedding_scale() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = embedding_normal(1000, 16, &mut rng);
        let std = (t.norm_sq() / (1000.0 * 16.0)).sqrt();
        assert!((std - 0.25).abs() < 0.02, "std {std}");
    }
}
