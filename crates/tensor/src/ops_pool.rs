//! Sequence pooling and time-axis structural ops used by the user encoder
//! (aggregation layer of Fig. 2) and by the recurrent context extractors.

use crate::graph::{Graph, Op, Var};
use crate::tensor::Tensor;

impl Graph {
    fn check_seq(&self, x: Var) -> (usize, usize, usize) {
        let t = self.value(x);
        assert_eq!(t.shape().rank(), 3, "sequence ops need [B,L,d], got {}", t.shape());
        (t.shape().dim(0), t.shape().dim(1), t.shape().dim(2))
    }

    /// Mean over valid (mask = 1) positions of a padded `[B,L,d]` batch.
    /// Rows whose mask is all zero yield a zero vector.
    pub fn mean_pool_masked(&mut self, x: Var, mask: &[f32]) -> Var {
        let (b, l, d) = self.check_seq(x);
        assert_eq!(mask.len(), b * l, "mask must be [B,L]");
        let t = self.value(x);
        let mut data = vec![0.0f32; b * d];
        for bi in 0..b {
            let cnt: f32 = mask[bi * l..(bi + 1) * l].iter().sum();
            if cnt == 0.0 {
                continue;
            }
            let out = &mut data[bi * d..(bi + 1) * d];
            for li in 0..l {
                if mask[bi * l + li] > 0.5 {
                    let row = t.row(bi * l + li);
                    for (o, &v) in out.iter_mut().zip(row) {
                        *o += v;
                    }
                }
            }
            for o in out.iter_mut() {
                *o /= cnt;
            }
        }
        let value = Tensor::from_vec([b, d], data);
        let rg = self.requires(x);
        self.push(value, Op::MeanPoolMasked { x, mask: mask.to_vec() }, rg)
    }

    /// Max over valid positions of a padded `[B,L,d]` batch. Fully masked
    /// rows yield zeros.
    pub fn max_pool_masked(&mut self, x: Var, mask: &[f32]) -> Var {
        let (b, l, d) = self.check_seq(x);
        assert_eq!(mask.len(), b * l, "mask must be [B,L]");
        let t = self.value(x);
        let mut data = vec![0.0f32; b * d];
        // argmax[b*d + j] = flat row index (b*l + li) the max came from, or
        // usize::MAX when the whole sequence is masked.
        let mut argmax = vec![usize::MAX; b * d];
        for bi in 0..b {
            for j in 0..d {
                let mut best = f32::NEG_INFINITY;
                let mut best_at = usize::MAX;
                for li in 0..l {
                    if mask[bi * l + li] > 0.5 {
                        let v = t.row(bi * l + li)[j];
                        if v > best {
                            best = v;
                            best_at = bi * l + li;
                        }
                    }
                }
                if best_at != usize::MAX {
                    data[bi * d + j] = best;
                    argmax[bi * d + j] = best_at;
                }
            }
        }
        let value = Tensor::from_vec([b, d], data);
        let rg = self.requires(x);
        self.push(value, Op::MaxPoolMasked { x, argmax }, rg)
    }

    /// "Last" pooling: picks position `lengths[b] - 1` of each sequence
    /// (the paper's last-pooling aggregator). `lengths[b]` must be ≥ 1.
    pub fn last_pool(&mut self, x: Var, lengths: &[usize]) -> Var {
        let (b, l, d) = self.check_seq(x);
        assert_eq!(lengths.len(), b, "lengths must be [B]");
        let t = self.value(x);
        let mut data = Vec::with_capacity(b * d);
        for (bi, &len) in lengths.iter().enumerate() {
            assert!(len >= 1 && len <= l, "length {len} out of range 1..={l}");
            data.extend_from_slice(t.row(bi * l + len - 1));
        }
        let value = Tensor::from_vec([b, d], data);
        let rg = self.requires(x);
        self.push(value, Op::LastPool { x, lengths: lengths.to_vec() }, rg)
    }

    /// Attention-style pooling: `out[b,:] = Σ_l w[b,l] · x[b,l,:]`.
    pub fn weighted_sum_pool(&mut self, w: Var, x: Var) -> Var {
        let (b, l, d) = self.check_seq(x);
        let tw = self.value(w);
        assert_eq!(tw.shape().dims(), &[b, l], "weights must be [B,L]");
        let tx = self.value(x);
        let mut data = vec![0.0f32; b * d];
        for bi in 0..b {
            let out = &mut data[bi * d..(bi + 1) * d];
            for li in 0..l {
                let c = tw.data()[bi * l + li];
                if c == 0.0 {
                    continue;
                }
                for (o, &v) in out.iter_mut().zip(tx.row(bi * l + li)) {
                    *o += c * v;
                }
            }
        }
        let value = Tensor::from_vec([b, d], data);
        let rg = self.requires(x) || self.requires(w);
        self.push(value, Op::WeightedSumPool { w, x }, rg)
    }

    /// Extracts time step `t`: `[B,L,d] -> [B,d]`.
    pub fn slice_time(&mut self, x: Var, t: usize) -> Var {
        let (b, l, d) = self.check_seq(x);
        assert!(t < l, "time index {t} out of length {l}");
        let tx = self.value(x);
        let mut data = Vec::with_capacity(b * d);
        for bi in 0..b {
            data.extend_from_slice(tx.row(bi * l + t));
        }
        let value = Tensor::from_vec([b, d], data);
        let rg = self.requires(x);
        self.push(value, Op::SliceTime { x, t }, rg)
    }

    /// Stacks `L` tensors of shape `[B,d]` into `[B,L,d]`.
    pub fn stack_time(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "stack_time needs at least one part");
        let first = self.value(parts[0]);
        assert_eq!(first.shape().rank(), 2, "stack_time parts must be [B,d]");
        let (b, d) = (first.shape().dim(0), first.shape().dim(1));
        let l = parts.len();
        let mut data = vec![0.0f32; b * l * d];
        for (li, &p) in parts.iter().enumerate() {
            let t = self.value(p);
            assert_eq!(t.shape().dims(), &[b, d], "stack_time shape mismatch at {li}");
            for bi in 0..b {
                data[(bi * l + li) * d..(bi * l + li + 1) * d].copy_from_slice(t.row(bi));
            }
        }
        let value = Tensor::from_vec([b, l, d], data);
        let rg = parts.iter().any(|&p| self.requires(p));
        self.push(value, Op::StackTime(parts.to_vec()), rg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_pool_ignores_masked() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec([1, 3, 2], vec![1., 2., 3., 4., 100., 100.]));
        let p = g.mean_pool_masked(x, &[1., 1., 0.]);
        assert_eq!(g.value(p).data(), &[2., 3.]);
    }

    #[test]
    fn max_pool_ignores_masked() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec([1, 3, 2], vec![1., 5., 3., 4., 100., 100.]));
        let p = g.max_pool_masked(x, &[1., 1., 0.]);
        assert_eq!(g.value(p).data(), &[3., 5.]);
    }

    #[test]
    fn last_pool_uses_lengths() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec([2, 2, 1], vec![1., 2., 3., 4.]));
        let p = g.last_pool(x, &[1, 2]);
        assert_eq!(g.value(p).data(), &[1., 4.]);
    }

    #[test]
    fn weighted_sum_pool_values() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec([1, 2, 2], vec![1., 0., 0., 1.]));
        let w = g.constant(Tensor::from_vec([1, 2], vec![0.25, 0.75]));
        let p = g.weighted_sum_pool(w, x);
        assert_eq!(g.value(p).data(), &[0.25, 0.75]);
    }

    #[test]
    fn slice_stack_round_trip() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec([2, 3, 2], (0..12).map(|i| i as f32).collect()));
        let s0 = g.slice_time(x, 0);
        let s1 = g.slice_time(x, 1);
        let s2 = g.slice_time(x, 2);
        let y = g.stack_time(&[s0, s1, s2]);
        assert_eq!(g.value(y).data(), g.value(x).data());
    }
}
