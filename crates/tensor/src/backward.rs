//! Reverse-mode gradient accumulation.
//!
//! The tape is traversed in reverse insertion order, which is a valid
//! topological order because node inputs always precede the node. For each
//! visited node we *compute* the input deltas under immutable borrows, then
//! *apply* them — keeping the borrow checker happy without `RefCell`.

use crate::graph::{Graph, Op, Var};
use crate::param::SparseGrad;
use crate::tensor::{dot, Tensor};
use unimatch_parallel::{is_parallel, par_chunk_rows, par_map_indexed};

impl Graph {
    fn add_grad(&mut self, v: Var, delta: Tensor) {
        if !self.requires(v) {
            return;
        }
        debug_assert_eq!(
            self.nodes[v.0].value.shape(),
            delta.shape(),
            "gradient shape mismatch for node {}",
            v.0
        );
        match &mut self.nodes[v.0].grad {
            Some(g) => g.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Runs backpropagation from the scalar node `loss`, accumulating
    /// gradients into every reachable node that requires them (including the
    /// sparse embedding-table gradients).
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.value(loss).shape().numel(),
            1,
            "backward requires a scalar loss, got {}",
            self.value(loss).shape()
        );
        assert!(self.requires(loss), "loss does not depend on any differentiable input");
        self.nodes[loss.0].grad = Some(Tensor::scalar(1.0));

        for i in (0..=loss.0).rev() {
            if !self.nodes[i].requires_grad || self.nodes[i].grad.is_none() {
                continue;
            }
            let g = self.nodes[i].grad.take().expect("checked above");
            let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
            self.step(&op, Var(i), &g);
            self.nodes[i].op = op;
            self.nodes[i].grad = Some(g);
        }
    }

    fn step(&mut self, op: &Op, node: Var, g: &Tensor) {
        match op {
            Op::Leaf => {}
            Op::Embedding { table, indices } => {
                let dim = g.shape().last_dim();
                let entry = self
                    .sparse_grads
                    .entry(*table)
                    .or_insert_with(|| SparseGrad::new(dim));
                for (r, &ix) in indices.iter().enumerate() {
                    entry.accumulate(ix, g.row(r));
                }
            }
            Op::Add(a, b) => {
                self.add_grad(*a, g.clone());
                self.add_grad(*b, g.clone());
            }
            Op::Sub(a, b) => {
                self.add_grad(*a, g.clone());
                self.add_grad(*b, g.map(|x| -x));
            }
            Op::Mul(a, b) => {
                let da = self.value(*b).zip(g, |bv, gv| bv * gv);
                let db = self.value(*a).zip(g, |av, gv| av * gv);
                self.add_grad(*a, da);
                self.add_grad(*b, db);
            }
            Op::Scale(a, c) => self.add_grad(*a, g.map(|x| x * c)),
            Op::AddScalar(a, _) => self.add_grad(*a, g.clone()),
            Op::Matmul(a, b) => {
                // out = a @ b; da = g @ b^T ; db = a^T @ g
                let da = g.matmul_transpose_b(self.value(*b));
                let db = self.value(*a).transpose().matmul(g);
                self.add_grad(*a, da);
                self.add_grad(*b, db);
            }
            Op::MatmulTransB(a, b) => {
                // out = a @ b^T; dout/da = g @ b ; dout/db = g^T @ a
                let da = g.matmul(self.value(*b));
                let db = g.transpose().matmul(self.value(*a));
                self.add_grad(*a, da);
                self.add_grad(*b, db);
            }
            Op::BatchMatmul(a, b) => {
                let (ta, tb) = (self.value(*a), self.value(*b));
                let (bs, m, k) = (ta.shape().dim(0), ta.shape().dim(1), ta.shape().dim(2));
                let n = tb.shape().dim(2);
                let (ad, bd, gd) = (ta.data(), tb.data(), g.data());
                let work = bs * m * n * k * 2;
                let mut da = vec![0.0f32; bs * m * k];
                let mut db = vec![0.0f32; bs * k * n];
                // da[s] = g[s] @ b[s]^T — each batch entry is an independent slab
                par_chunk_rows(&mut da, bs, work, |start, chunk| {
                    for (i_s, out_s) in chunk.chunks_mut(m * k).enumerate() {
                        let s = start + i_s;
                        for i in 0..m {
                            let grow = &gd[s * m * n + i * n..s * m * n + (i + 1) * n];
                            for p in 0..k {
                                let brow = &bd[s * k * n + p * n..s * k * n + (p + 1) * n];
                                out_s[i * k + p] += dot(grow, brow);
                            }
                        }
                    }
                });
                // db[s] = a[s]^T @ g[s]
                par_chunk_rows(&mut db, bs, work, |start, chunk| {
                    for (i_s, out_s) in chunk.chunks_mut(k * n).enumerate() {
                        let s = start + i_s;
                        for p in 0..k {
                            for i in 0..m {
                                let av = ad[s * m * k + i * k + p];
                                if av == 0.0 {
                                    continue;
                                }
                                let grow = &gd[s * m * n + i * n..s * m * n + (i + 1) * n];
                                let dbrow = &mut out_s[p * n..(p + 1) * n];
                                for (o, &gv) in dbrow.iter_mut().zip(grow) {
                                    *o += av * gv;
                                }
                            }
                        }
                    }
                });
                self.add_grad(*a, Tensor::from_vec([bs, m, k], da));
                self.add_grad(*b, Tensor::from_vec([bs, k, n], db));
            }
            Op::BatchMatmulTransB(a, b) => {
                // out[s] = a[s] @ b[s]^T ; da[s] = g[s] @ b[s] ; db[s] = g[s]^T @ a[s]
                let (ta, tb) = (self.value(*a), self.value(*b));
                let (bs, m, k) = (ta.shape().dim(0), ta.shape().dim(1), ta.shape().dim(2));
                let n = tb.shape().dim(1);
                let (ad, bd, gd) = (ta.data(), tb.data(), g.data());
                let work = bs * m * n * k * 2;
                let mut da = vec![0.0f32; bs * m * k];
                let mut db = vec![0.0f32; bs * n * k];
                par_chunk_rows(&mut da, bs, work, |start, chunk| {
                    for (i_s, out_s) in chunk.chunks_mut(m * k).enumerate() {
                        let s = start + i_s;
                        for i in 0..m {
                            let grow = &gd[s * m * n + i * n..s * m * n + (i + 1) * n];
                            let darow = &mut out_s[i * k..(i + 1) * k];
                            for (j, &gv) in grow.iter().enumerate() {
                                if gv == 0.0 {
                                    continue;
                                }
                                let brow = &bd[s * n * k + j * k..s * n * k + (j + 1) * k];
                                for (o, &bv) in darow.iter_mut().zip(brow) {
                                    *o += gv * bv;
                                }
                            }
                        }
                    }
                });
                par_chunk_rows(&mut db, bs, work, |start, chunk| {
                    for (i_s, out_s) in chunk.chunks_mut(n * k).enumerate() {
                        let s = start + i_s;
                        for j in 0..n {
                            for i in 0..m {
                                let gv = gd[s * m * n + i * n + j];
                                if gv == 0.0 {
                                    continue;
                                }
                                let arow = &ad[s * m * k + i * k..s * m * k + (i + 1) * k];
                                for (p, &av) in arow.iter().enumerate() {
                                    out_s[j * k + p] += gv * av;
                                }
                            }
                        }
                    }
                });
                self.add_grad(*a, Tensor::from_vec([bs, m, k], da));
                self.add_grad(*b, Tensor::from_vec([bs, n, k], db));
            }
            Op::Transpose(a) => self.add_grad(*a, g.transpose()),
            Op::Reshape(a) => {
                let shape = self.value(*a).shape().clone();
                self.add_grad(*a, g.clone().reshape(shape));
            }
            Op::Sigmoid(a) => {
                let y = self.value(node).clone();
                self.add_grad(*a, y.zip(g, |yv, gv| gv * yv * (1.0 - yv)));
            }
            Op::Tanh(a) => {
                let y = self.value(node).clone();
                self.add_grad(*a, y.zip(g, |yv, gv| gv * (1.0 - yv * yv)));
            }
            Op::Relu(a) => {
                let x = self.value(*a).zip(g, |xv, gv| if xv > 0.0 { gv } else { 0.0 });
                self.add_grad(*a, x);
            }
            Op::Exp(a) => {
                let y = self.value(node).clone();
                self.add_grad(*a, y.zip(g, |yv, gv| gv * yv));
            }
            Op::Ln(a) => {
                let x = self.value(*a).zip(g, |xv, gv| gv / xv);
                self.add_grad(*a, x);
            }
            Op::SumAll(a) => {
                let shape = self.value(*a).shape().clone();
                self.add_grad(*a, Tensor::full(shape, g.item()));
            }
            Op::MeanAll(a) => {
                let shape = self.value(*a).shape().clone();
                let n = shape.numel() as f32;
                self.add_grad(*a, Tensor::full(shape, g.item() / n));
            }
            Op::LogSoftmax(a) => {
                // y = x - lse(x); dx = g - softmax(x) * Σ_row g
                let y = self.value(node);
                let rows = y.shape().outer_numel();
                let d = y.shape().last_dim();
                let (yd, gd) = (y.data(), g.data());
                let mut dx = vec![0.0f32; rows * d];
                par_chunk_rows(&mut dx, rows, rows * d * 4, |start, chunk| {
                    for (i, out_row) in chunk.chunks_mut(d).enumerate() {
                        let r = start + i;
                        let gr = &gd[r * d..(r + 1) * d];
                        let yr = &yd[r * d..(r + 1) * d];
                        let gsum: f32 = gr.iter().sum();
                        for j in 0..d {
                            out_row[j] = gr[j] - yr[j].exp() * gsum;
                        }
                    }
                });
                let shape = y.shape().clone();
                self.add_grad(*a, Tensor::from_vec(shape, dx));
            }
            Op::Softmax(a, _mask) => {
                // dx = y ⊙ (g - Σ_row g⊙y); masked entries have y = 0.
                let y = self.value(node);
                let rows = y.shape().outer_numel();
                let d = y.shape().last_dim();
                let (yd, gd) = (y.data(), g.data());
                let mut dx = vec![0.0f32; rows * d];
                par_chunk_rows(&mut dx, rows, rows * d * 4, |start, chunk| {
                    for (i, out_row) in chunk.chunks_mut(d).enumerate() {
                        let r = start + i;
                        let gr = &gd[r * d..(r + 1) * d];
                        let yr = &yd[r * d..(r + 1) * d];
                        let inner = dot(gr, yr);
                        for j in 0..d {
                            out_row[j] = yr[j] * (gr[j] - inner);
                        }
                    }
                });
                let shape = y.shape().clone();
                self.add_grad(*a, Tensor::from_vec(shape, dx));
            }
            Op::L2NormalizeRows(a, eps) => {
                let x = self.value(*a);
                let y = self.value(node);
                let rows = x.shape().outer_numel();
                let d = x.shape().last_dim();
                let (xd, yd, gd) = (x.data(), y.data(), g.data());
                let eps = *eps;
                let mut dx = vec![0.0f32; rows * d];
                par_chunk_rows(&mut dx, rows, rows * d * 6, |start, chunk| {
                    for (i, out_row) in chunk.chunks_mut(d).enumerate() {
                        let r = start + i;
                        let xr = &xd[r * d..(r + 1) * d];
                        let gr = &gd[r * d..(r + 1) * d];
                        let norm = dot(xr, xr).sqrt();
                        if norm <= eps {
                            for j in 0..d {
                                out_row[j] = gr[j] / eps;
                            }
                        } else {
                            let yr = &yd[r * d..(r + 1) * d];
                            let yg = dot(yr, gr);
                            for j in 0..d {
                                out_row[j] = (gr[j] - yr[j] * yg) / norm;
                            }
                        }
                    }
                });
                let shape = x.shape().clone();
                self.add_grad(*a, Tensor::from_vec(shape, dx));
            }
            Op::LayerNorm { x, eps } => {
                let xt = self.value(*x);
                let y = self.value(node);
                let rows = xt.shape().outer_numel();
                let d = xt.shape().last_dim();
                let df = d as f32;
                let mut dx = vec![0.0f32; rows * d];
                for r in 0..rows {
                    let xr = xt.row(r);
                    let yr = y.row(r);
                    let gr = &g.data()[r * d..(r + 1) * d];
                    let mean = xr.iter().sum::<f32>() / df;
                    let var = xr.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / df;
                    let inv = 1.0 / (var + eps).sqrt();
                    let gmean = gr.iter().sum::<f32>() / df;
                    let gy = dot(gr, yr) / df;
                    for j in 0..d {
                        dx[r * d + j] = inv * (gr[j] - gmean - yr[j] * gy);
                    }
                }
                let shape = xt.shape().clone();
                self.add_grad(*x, Tensor::from_vec(shape, dx));
            }
            Op::AddRowBroadcast(a, b) => {
                self.add_grad(*a, g.clone());
                let d = g.shape().last_dim();
                let rows = g.shape().outer_numel();
                let mut db = vec![0.0f32; d];
                for r in 0..rows {
                    for (o, &gv) in db.iter_mut().zip(g.row(r)) {
                        *o += gv;
                    }
                }
                self.add_grad(*b, Tensor::from_vec([d], db));
            }
            Op::MulRowBroadcast(a, b) => {
                let bt = self.value(*b);
                let at = self.value(*a);
                let d = g.shape().last_dim();
                let rows = g.shape().outer_numel();
                let mut da = vec![0.0f32; rows * d];
                let mut db = vec![0.0f32; d];
                for r in 0..rows {
                    let gr = g.row(r);
                    let ar = at.row(r);
                    for j in 0..d {
                        da[r * d + j] = gr[j] * bt.data()[j];
                        db[j] += gr[j] * ar[j];
                    }
                }
                let shape = at.shape().clone();
                self.add_grad(*a, Tensor::from_vec(shape, da));
                self.add_grad(*b, Tensor::from_vec([d], db));
            }
            Op::ScaleRows(a, s) => {
                let at = self.value(*a);
                let st = self.value(*s);
                let rows = at.shape().outer_numel();
                let d = at.shape().last_dim();
                let mut da = vec![0.0f32; rows * d];
                let mut ds = vec![0.0f32; rows];
                for r in 0..rows {
                    let gr = g.row(r);
                    let c = st.data()[r];
                    for j in 0..d {
                        da[r * d + j] = gr[j] * c;
                    }
                    ds[r] = dot(gr, at.row(r));
                }
                let shape = at.shape().clone();
                self.add_grad(*a, Tensor::from_vec(shape, da));
                self.add_grad(*s, Tensor::from_vec([rows], ds));
            }
            Op::PickPerRow(a, indices) => {
                let at = self.value(*a);
                let d = at.shape().last_dim();
                let mut da = Tensor::zeros(at.shape().clone());
                for (r, &j) in indices.iter().enumerate() {
                    da.data_mut()[r * d + j] = g.data()[r];
                }
                self.add_grad(*a, da);
            }
            Op::Diag(a) => {
                let at = self.value(*a);
                let n = at.shape().rows();
                let mut da = Tensor::zeros(at.shape().clone());
                for i in 0..n {
                    da.data_mut()[i * n + i] = g.data()[i];
                }
                self.add_grad(*a, da);
            }
            Op::MeanPoolMasked { x, mask } => {
                let xt = self.value(*x);
                let (b, l, d) = (xt.shape().dim(0), xt.shape().dim(1), xt.shape().dim(2));
                let mut dx = Tensor::zeros([b, l, d]);
                for bi in 0..b {
                    let cnt: f32 = mask[bi * l..(bi + 1) * l].iter().sum();
                    if cnt == 0.0 {
                        continue;
                    }
                    let gr = g.row(bi);
                    for li in 0..l {
                        if mask[bi * l + li] > 0.5 {
                            let dst = dx.row_mut(bi * l + li);
                            for (o, &gv) in dst.iter_mut().zip(gr) {
                                *o += gv / cnt;
                            }
                        }
                    }
                }
                self.add_grad(*x, dx);
            }
            Op::MaxPoolMasked { x, argmax } => {
                let xt = self.value(*x);
                let (b, l, d) = (xt.shape().dim(0), xt.shape().dim(1), xt.shape().dim(2));
                let mut dx = Tensor::zeros([b, l, d]);
                for bi in 0..b {
                    for j in 0..d {
                        let src = argmax[bi * d + j];
                        if src != usize::MAX {
                            dx.data_mut()[src * d + j] += g.data()[bi * d + j];
                        }
                    }
                }
                self.add_grad(*x, dx);
            }
            Op::LastPool { x, lengths } => {
                let xt = self.value(*x);
                let (b, l, d) = (xt.shape().dim(0), xt.shape().dim(1), xt.shape().dim(2));
                let mut dx = Tensor::zeros([b, l, d]);
                for (bi, &len) in lengths.iter().enumerate() {
                    let dst = dx.row_mut(bi * l + len - 1);
                    dst.copy_from_slice(g.row(bi));
                }
                self.add_grad(*x, dx);
            }
            Op::WeightedSumPool { w, x } => {
                let xt = self.value(*x);
                let wt = self.value(*w);
                let (b, l, d) = (xt.shape().dim(0), xt.shape().dim(1), xt.shape().dim(2));
                let mut dx = Tensor::zeros([b, l, d]);
                let mut dw = Tensor::zeros([b, l]);
                for bi in 0..b {
                    let gr = g.row(bi);
                    for li in 0..l {
                        let c = wt.data()[bi * l + li];
                        let xr = xt.row(bi * l + li);
                        dw.data_mut()[bi * l + li] = dot(gr, xr);
                        if c != 0.0 {
                            let dst = dx.row_mut(bi * l + li);
                            for (o, &gv) in dst.iter_mut().zip(gr) {
                                *o += c * gv;
                            }
                        }
                    }
                }
                self.add_grad(*x, dx);
                self.add_grad(*w, dw);
            }
            Op::SliceTime { x, t } => {
                let xt = self.value(*x);
                let (b, l, d) = (xt.shape().dim(0), xt.shape().dim(1), xt.shape().dim(2));
                let mut dx = Tensor::zeros([b, l, d]);
                for bi in 0..b {
                    dx.row_mut(bi * l + t).copy_from_slice(g.row(bi));
                }
                self.add_grad(*x, dx);
            }
            Op::StackTime(parts) => {
                let l = parts.len();
                let (b, d) = (g.shape().dim(0), g.shape().dim(2));
                for (li, &p) in parts.iter().enumerate() {
                    let mut dp = Tensor::zeros([b, d]);
                    for bi in 0..b {
                        dp.row_mut(bi).copy_from_slice(g.row(bi * l + li));
                    }
                    self.add_grad(p, dp);
                }
            }
            Op::Conv1dSame { x, w } => {
                let xt = self.value(*x);
                let wt = self.value(*w);
                let (b, l, din) = (xt.shape().dim(0), xt.shape().dim(1), xt.shape().dim(2));
                let (k, _, dout) = (wt.shape().dim(0), wt.shape().dim(1), wt.shape().dim(2));
                let half = k / 2;
                let (xd, wd, gd) = (xt.data(), wt.data(), g.data());
                let work = b * l * dout * k * din * 2;
                let mut dx = vec![0.0f32; b * l * din];
                let mut dw = vec![0.0f32; k * din * dout];
                if is_parallel(b, work) {
                    // dx: every write for batch entry `bi` lands in its own
                    // [l, din] slab, so splitting over `bi` is race-free.
                    par_chunk_rows(&mut dx, b, work, |start, chunk| {
                        for (i_b, out_b) in chunk.chunks_mut(l * din).enumerate() {
                            let bi = start + i_b;
                            for t in 0..l {
                                let gr = &gd[(bi * l + t) * dout..(bi * l + t + 1) * dout];
                                for kk in 0..k {
                                    let src = t as isize + kk as isize - half as isize;
                                    if src < 0 || src >= l as isize {
                                        continue;
                                    }
                                    let src = src as usize;
                                    for c in 0..din {
                                        let wrow = &wd[(kk * din + c) * dout..(kk * din + c + 1) * dout];
                                        out_b[src * din + c] += dot(gr, wrow);
                                    }
                                }
                            }
                        }
                    });
                    // dw accumulates across batch entries: compute a partial
                    // per entry and reduce in `bi` order so the result only
                    // depends on the split decision, never the thread count.
                    let partials = par_map_indexed(b, work, |bi| {
                        let mut part = vec![0.0f32; k * din * dout];
                        for t in 0..l {
                            let gr = &gd[(bi * l + t) * dout..(bi * l + t + 1) * dout];
                            for kk in 0..k {
                                let src = t as isize + kk as isize - half as isize;
                                if src < 0 || src >= l as isize {
                                    continue;
                                }
                                let xr = &xd[(bi * l + src as usize) * din
                                    ..(bi * l + src as usize + 1) * din];
                                for (c, &xv) in xr.iter().enumerate() {
                                    if xv == 0.0 {
                                        continue;
                                    }
                                    let dwrow =
                                        &mut part[(kk * din + c) * dout..(kk * din + c + 1) * dout];
                                    for (o, &gv) in dwrow.iter_mut().zip(gr) {
                                        *o += xv * gv;
                                    }
                                }
                            }
                        }
                        part
                    });
                    for part in partials {
                        for (o, v) in dw.iter_mut().zip(part) {
                            *o += v;
                        }
                    }
                } else {
                    for bi in 0..b {
                        for t in 0..l {
                            let gr = &gd[(bi * l + t) * dout..(bi * l + t + 1) * dout];
                            for kk in 0..k {
                                let src = t as isize + kk as isize - half as isize;
                                if src < 0 || src >= l as isize {
                                    continue;
                                }
                                let src = src as usize;
                                let xr = &xd[(bi * l + src) * din..(bi * l + src + 1) * din];
                                for (c, &xv) in xr.iter().enumerate() {
                                    let wrow = &wd[(kk * din + c) * dout..(kk * din + c + 1) * dout];
                                    dx[(bi * l + src) * din + c] += dot(gr, wrow);
                                    if xv != 0.0 {
                                        let dwrow = &mut dw
                                            [(kk * din + c) * dout..(kk * din + c + 1) * dout];
                                        for (o, &gv) in dwrow.iter_mut().zip(gr) {
                                            *o += xv * gv;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                self.add_grad(*x, Tensor::from_vec([b, l, din], dx));
                self.add_grad(*w, Tensor::from_vec([k, din, dout], dw));
            }
            Op::ConcatLast(a, b) => {
                let (da_w, db_w) = (
                    self.value(*a).shape().last_dim(),
                    self.value(*b).shape().last_dim(),
                );
                let rows = g.shape().outer_numel();
                let (sa, sb) = (
                    self.value(*a).shape().clone(),
                    self.value(*b).shape().clone(),
                );
                let mut da = Tensor::zeros(sa);
                let mut db = Tensor::zeros(sb);
                for r in 0..rows {
                    let gr = g.row(r);
                    da.row_mut(r).copy_from_slice(&gr[..da_w]);
                    db.row_mut(r).copy_from_slice(&gr[da_w..da_w + db_w]);
                }
                self.add_grad(*a, da);
                self.add_grad(*b, db);
            }
        }
    }
}
