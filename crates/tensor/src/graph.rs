//! Tape-based reverse-mode autograd.
//!
//! A [`Graph`] is an append-only arena of nodes. Building an expression
//! pushes nodes and immediately computes forward values; [`Graph::backward`]
//! walks the arena in reverse insertion order (a valid topological order)
//! accumulating gradients. One graph is built per training step and dropped
//! afterwards — there are no reference cycles and no interior mutability.

use std::collections::HashMap;

use crate::param::{ParamId, ParamSet, SparseGrad};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Handle to a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Var(pub(crate) usize);

/// The operation that produced a node, with whatever auxiliary state its
/// backward pass needs (saved at forward time).
#[derive(Debug)]
pub(crate) enum Op {
    /// Input node (constant or dense parameter copy).
    Leaf,
    /// Rows gathered from an external embedding table.
    Embedding { table: ParamId, indices: Vec<u32> },
    Add(Var, Var),
    Sub(Var, Var),
    /// Elementwise product of same-shaped tensors.
    Mul(Var, Var),
    /// Multiply by a compile-time constant.
    Scale(Var, f32),
    AddScalar(Var, #[allow(dead_code)] f32),
    /// `a[m,k] @ b[k,n]`.
    Matmul(Var, Var),
    /// `a[m,k] @ b[n,k]^T` — the in-batch logit matrix shape.
    MatmulTransB(Var, Var),
    /// `a[B,m,k] @ b[B,k,n]` batched.
    BatchMatmul(Var, Var),
    /// `a[B,m,k] @ b[B,n,k]^T` batched.
    BatchMatmulTransB(Var, Var),
    Transpose(Var),
    Reshape(Var),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    Exp(Var),
    Ln(Var),
    SumAll(Var),
    MeanAll(Var),
    /// Log-softmax over the last axis.
    LogSoftmax(Var),
    /// Softmax over the last axis, with an optional 0/1 keep-mask of the
    /// same length as the input (masked entries get probability 0).
    Softmax(Var, Option<Vec<f32>>),
    /// L2-normalize each row (last axis) with an epsilon floor.
    L2NormalizeRows(Var, f32),
    /// `a[..., d] + b[d]`, `b` broadcast over all outer axes.
    AddRowBroadcast(Var, Var),
    /// `a[..., d] * b[d]`, `b` broadcast over all outer axes.
    MulRowBroadcast(Var, Var),
    /// Viewing `a` as `[R, d]`: `out[r, :] = a[r, :] * s[r]` with `s: [R]`.
    ScaleRows(Var, Var),
    /// Viewing `a` as `[R, d]`: `out[r] = a[r, idx[r]]`.
    PickPerRow(Var, Vec<usize>),
    /// Diagonal of a square matrix.
    Diag(Var),
    /// Mean over valid (mask=1) positions: `[B,L,d] -> [B,d]`.
    MeanPoolMasked { x: Var, mask: Vec<f32> },
    /// Max over valid positions; `argmax[b*d+j]` saved for backward.
    MaxPoolMasked { x: Var, argmax: Vec<usize> },
    /// Pick position `lengths[b]-1` of each sequence: `[B,L,d] -> [B,d]`.
    LastPool { x: Var, lengths: Vec<usize> },
    /// `out[b,:] = Σ_l w[b,l] · x[b,l,:]` with `w: [B,L]`, `x: [B,L,d]`.
    WeightedSumPool { w: Var, x: Var },
    /// Time slice `[B,L,d] -> [B,d]` at step `t`.
    SliceTime { x: Var, t: usize },
    /// Stack `L` tensors of `[B,d]` into `[B,L,d]`.
    StackTime(Vec<Var>),
    /// Same-padded 1-D convolution over the sequence axis:
    /// `x[B,L,din] * w[k,din,dout] -> [B,L,dout]`.
    Conv1dSame { x: Var, w: Var },
    /// Normalize the last axis to zero mean / unit variance (no affine).
    LayerNorm { x: Var, eps: f32 },
    /// Concatenate two tensors along the last axis (equal outer dims).
    ConcatLast(Var, Var),
}

pub(crate) struct Node {
    pub value: Tensor,
    pub grad: Option<Tensor>,
    pub op: Op,
    pub requires_grad: bool,
}

/// An append-only autograd tape.
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    /// Dense parameter leaves created this step: `(param, leaf var)`.
    pub(crate) param_leaves: Vec<(ParamId, Var)>,
    /// Sparse gradients accumulated for embedding tables.
    pub(crate) sparse_grads: HashMap<ParamId, SparseGrad>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        let v = Var(self.nodes.len());
        self.nodes.push(Node { value, grad: None, op, requires_grad });
        v
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of `v` (`None` before `backward`, or if `v`
    /// does not require grad / received no gradient).
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    pub(crate) fn requires(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// A constant input: participates in forward only.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, false)
    }

    /// A non-parameter leaf that still wants a gradient (used by gradient
    /// checks and by losses probing intermediate sensitivities).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf, true)
    }

    /// Copies a dense parameter onto the tape as a differentiable leaf and
    /// remembers the association so the optimizer can collect its gradient.
    pub fn param(&mut self, params: &ParamSet, id: ParamId) -> Var {
        let v = self.push(params.get(id).clone(), Op::Leaf, true);
        self.param_leaves.push((id, v));
        v
    }

    /// Gathers rows of an embedding table: `indices.len()` rows of width
    /// `d`, returned as `[len, d]`. The table itself stays outside the
    /// graph; its gradient is accumulated sparsely.
    pub fn embedding(&mut self, params: &ParamSet, table: ParamId, indices: &[u32]) -> Var {
        let t = params.get(table);
        assert_eq!(t.shape().rank(), 2, "embedding table must be [vocab, d]");
        let (vocab, d) = (t.shape().dim(0), t.shape().dim(1));
        let mut data = Vec::with_capacity(indices.len() * d);
        for &ix in indices {
            assert!((ix as usize) < vocab, "embedding index {ix} out of vocab {vocab}");
            data.extend_from_slice(t.row(ix as usize));
        }
        let value = Tensor::from_vec([indices.len(), d], data);
        self.push(value, Op::Embedding { table, indices: indices.to_vec() }, true)
    }

    /// Dense gradients of this step's parameter leaves, summed per id when a
    /// parameter was placed on the tape more than once.
    pub fn dense_grads(&self) -> HashMap<ParamId, Tensor> {
        let mut out: HashMap<ParamId, Tensor> = HashMap::new();
        for &(id, v) in &self.param_leaves {
            if let Some(g) = self.grad(v) {
                out.entry(id)
                    .and_modify(|acc| acc.axpy(1.0, g))
                    .or_insert_with(|| g.clone());
            }
        }
        out
    }

    /// Sparse embedding gradients accumulated by `backward`.
    pub fn sparse_grads(&self) -> &HashMap<ParamId, SparseGrad> {
        &self.sparse_grads
    }

    // ---- basic arithmetic -------------------------------------------------

    fn binary_same_shape(&mut self, a: Var, b: Var, op: fn(Var, Var) -> Op, f: fn(f32, f32) -> f32) -> Var {
        let value = self.value(a).zip(self.value(b), f);
        let rg = self.requires(a) || self.requires(b);
        self.push(value, op(a, b), rg)
    }

    /// Elementwise sum of same-shaped tensors.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.binary_same_shape(a, b, Op::Add, |x, y| x + y)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.binary_same_shape(a, b, Op::Sub, |x, y| x - y)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.binary_same_shape(a, b, Op::Mul, |x, y| x * y)
    }

    /// Multiplication by a constant.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).map(|x| x * c);
        let rg = self.requires(a);
        self.push(value, Op::Scale(a, c), rg)
    }

    /// Addition of a constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let value = self.value(a).map(|x| x + c);
        let rg = self.requires(a);
        self.push(value, Op::AddScalar(a, c), rg)
    }

    /// Matrix product `a[m,k] @ b[k,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::Matmul(a, b), rg)
    }

    /// Matrix product against a transposed right operand: `a[m,k] @ b[n,k]^T`.
    pub fn matmul_transpose_b(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul_transpose_b(self.value(b));
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::MatmulTransB(a, b), rg)
    }

    /// Transpose of a matrix.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose();
        let rg = self.requires(a);
        self.push(value, Op::Transpose(a), rg)
    }

    /// Reinterpret under a new shape (same element count).
    pub fn reshape(&mut self, a: Var, shape: impl Into<Shape>) -> Var {
        let value = self.value(a).clone().reshape(shape);
        let rg = self.requires(a);
        self.push(value, Op::Reshape(a), rg)
    }

    /// Sum of all elements (scalar output).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.value(a).sum());
        let rg = self.requires(a);
        self.push(value, Op::SumAll(a), rg)
    }

    /// Mean of all elements (scalar output).
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.value(a).shape().numel() as f32;
        let value = Tensor::scalar(self.value(a).sum() / n);
        let rg = self.requires(a);
        self.push(value, Op::MeanAll(a), rg)
    }

    /// Concatenates along the last axis; outer dimensions must agree.
    pub fn concat_last(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape().outer_numel(), tb.shape().outer_numel(), "concat outer mismatch");
        assert_eq!(ta.shape().rank(), tb.shape().rank(), "concat rank mismatch");
        let rows = ta.shape().outer_numel();
        let (da, db) = (ta.shape().last_dim(), tb.shape().last_dim());
        let mut data = Vec::with_capacity(rows * (da + db));
        for r in 0..rows {
            data.extend_from_slice(ta.row(r));
            data.extend_from_slice(tb.row(r));
        }
        let mut dims = ta.shape().dims().to_vec();
        *dims.last_mut().expect("non-empty") = da + db;
        let value = Tensor::from_vec(dims.as_slice(), data);
        let rg = self.requires(a) || self.requires(b);
        self.push(value, Op::ConcatLast(a, b), rg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::vector(&[1.0, 2.0]));
        let b = g.constant(Tensor::vector(&[3.0, 4.0]));
        let c = g.add(a, b);
        let d = g.mul(c, c);
        assert_eq!(g.value(d).data(), &[16.0, 36.0]);
        let s = g.sum_all(d);
        assert_eq!(g.value(s).item(), 52.0);
    }

    #[test]
    fn requires_grad_propagates() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::vector(&[1.0]));
        let b = g.input(Tensor::vector(&[2.0]));
        let c = g.add(a, b);
        assert!(g.requires(c));
        let d = g.constant(Tensor::vector(&[1.0]));
        let e = g.add(a, d);
        assert!(!g.requires(e));
    }

    #[test]
    fn embedding_gathers_rows() {
        let mut ps = ParamSet::new();
        let table = ps.add(
            "emb",
            Tensor::from_vec([3, 2], vec![0., 1., 10., 11., 20., 21.]),
        );
        let mut g = Graph::new();
        let e = g.embedding(&ps, table, &[2, 0, 2]);
        assert_eq!(g.value(e).shape().dims(), &[3, 2]);
        assert_eq!(g.value(e).data(), &[20., 21., 0., 1., 20., 21.]);
    }

    #[test]
    fn concat_last_works() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]));
        let b = g.constant(Tensor::from_vec([2, 1], vec![9., 8.]));
        let c = g.concat_last(a, b);
        assert_eq!(g.value(c).shape().dims(), &[2, 3]);
        assert_eq!(g.value(c).data(), &[1., 2., 9., 3., 4., 8.]);
    }
}
