//! Named, persistent trainable parameters.
//!
//! Parameters live *outside* the per-step computation graph. Each training
//! step copies dense parameters into graph leaves (they are small) and
//! borrows embedding tables in place (they are large); gradients flow back
//! keyed by [`ParamId`].

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Stable handle to a parameter inside a [`ParamSet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The underlying index (stable for the lifetime of the `ParamSet`).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A single named parameter tensor.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Param {
    /// Human-readable name, e.g. `"user_encoder.gru.w_z"`.
    pub name: String,
    /// Current value.
    pub value: Tensor,
}

/// The collection of all trainable parameters of a model.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// An empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.params.len());
        self.params.push(Param { name: name.into(), value });
        id
    }

    /// The parameter value.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// The parameter value, mutably (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// The parameter name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Shape of a parameter.
    pub fn shape(&self, id: ParamId) -> &Shape {
        self.params[id.0].value.shape()
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True when no parameters have been registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Iterates `(id, param)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// All parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Total number of trainable scalars across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.shape().numel()).sum()
    }

    /// Global L2 norm of all parameters (diagnostics).
    pub fn global_norm(&self) -> f32 {
        self.params.iter().map(|p| p.value.norm_sq()).sum::<f32>().sqrt()
    }
}

/// Per-row sparse gradient for an embedding table: only touched rows carry
/// gradient mass, so optimizers can update lazily.
#[derive(Clone, Debug, Default)]
pub struct SparseGrad {
    /// Embedding dimension (row width).
    pub dim: usize,
    /// Accumulated gradient per touched row.
    pub rows: std::collections::HashMap<u32, Vec<f32>>,
}

impl SparseGrad {
    /// Creates an empty sparse gradient for rows of width `dim`.
    pub fn new(dim: usize) -> Self {
        SparseGrad { dim, rows: std::collections::HashMap::new() }
    }

    /// Accumulates `grad` into `row`.
    pub fn accumulate(&mut self, row: u32, grad: &[f32]) {
        debug_assert_eq!(grad.len(), self.dim);
        let slot = self.rows.entry(row).or_insert_with(|| vec![0.0; self.dim]);
        for (s, &g) in slot.iter_mut().zip(grad.iter()) {
            *s += g;
        }
    }

    /// Number of distinct rows touched.
    pub fn touched(&self) -> usize {
        self.rows.len()
    }

    /// Converts into a dense gradient tensor of shape `[vocab, dim]`
    /// (testing aid; production updates stay sparse).
    pub fn to_dense(&self, vocab: usize) -> Tensor {
        let mut out = Tensor::zeros([vocab, self.dim]);
        for (&row, grad) in &self.rows {
            let dst = out.row_mut(row as usize);
            for (d, &g) in dst.iter_mut().zip(grad.iter()) {
                *d += g;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut ps = ParamSet::new();
        let a = ps.add("w", Tensor::ones([2, 3]));
        let b = ps.add("b", Tensor::zeros([3]));
        assert_ne!(a, b);
        assert_eq!(ps.name(a), "w");
        assert_eq!(ps.get(b).shape().dims(), &[3]);
        assert_eq!(ps.num_scalars(), 9);
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn sparse_grad_accumulates() {
        let mut g = SparseGrad::new(2);
        g.accumulate(3, &[1.0, 2.0]);
        g.accumulate(3, &[0.5, 0.5]);
        g.accumulate(7, &[1.0, 0.0]);
        assert_eq!(g.touched(), 2);
        let dense = g.to_dense(10);
        assert_eq!(dense.row(3), &[1.5, 2.5]);
        assert_eq!(dense.row(7), &[1.0, 0.0]);
        assert_eq!(dense.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn global_norm() {
        let mut ps = ParamSet::new();
        ps.add("a", Tensor::vector(&[3.0]));
        ps.add("b", Tensor::vector(&[4.0]));
        assert!((ps.global_norm() - 5.0).abs() < 1e-6);
    }
}
