//! # unimatch-tensor
//!
//! The machine-learning substrate of the UniMatch reproduction: dense `f32`
//! tensors and a tape-based reverse-mode autograd engine sized for
//! retrieval-model training (small dense layers + large embedding tables
//! with sparse gradients).
//!
//! The design follows three constraints from the paper's setting:
//!
//! 1. **Two-tower models are small but embedding tables are not** — dense
//!    parameters are copied onto the tape per step, embedding tables are
//!    borrowed in place and receive per-row [`param::SparseGrad`]s.
//! 2. **Losses are batch-global** — the in-batch NCE family needs the full
//!    `[B,B]` logit matrix, so ops like [`Graph::matmul_transpose_b`],
//!    [`Graph::diag`] and row/column softmaxes are first-class.
//! 3. **Everything must be gradient-checkable** — [`check`] provides finite
//!    difference verification used across the workspace test suites.
//!
//! ```
//! use unimatch_tensor::{Graph, ParamSet, Tensor};
//!
//! let mut params = ParamSet::new();
//! let w = params.add("w", Tensor::from_vec([2, 1], vec![0.5, -0.5]));
//!
//! let mut g = Graph::new();
//! let x = g.constant(Tensor::from_vec([1, 2], vec![1.0, 2.0]));
//! let wv = g.param(&params, w);
//! let y = g.matmul(x, wv);
//! let loss = g.mean_all(y);
//! g.backward(loss);
//!
//! let grads = g.dense_grads();
//! assert_eq!(grads[&w].data(), &[1.0, 2.0]);
//! ```

#![warn(missing_docs)]

mod backward;
pub mod check;
mod graph;
pub mod init;
mod ops_nn;
mod ops_pool;
mod param;
mod shape;
mod tensor;

pub use graph::{Graph, Var};
pub use param::{Param, ParamId, ParamSet, SparseGrad};
pub use shape::Shape;
pub use tensor::{dot, Tensor};
