//! Dense row-major `f32` tensor storage and the raw (non-differentiable)
//! kernels the autograd ops are built from.

use crate::shape::Shape;
use rand::Rng;

/// A dense, row-major, owned `f32` tensor.
///
/// `Tensor` is a plain value type: cloning copies the buffer. All autograd
/// bookkeeping lives in [`crate::graph::Graph`]; `Tensor` itself only knows
/// how to compute.
#[derive(Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Builds a tensor from a shape and a buffer of exactly `shape.numel()`
    /// elements.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// All-zero tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// All-one tensor.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![value; n] }
    }

    /// A rank-1 tensor wrapping `values`.
    pub fn vector(values: &[f32]) -> Self {
        Tensor::from_vec(Shape::vector(values.len()), values.to_vec())
    }

    /// A scalar represented as a one-element rank-1 tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor::vector(&[value])
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// Gaussian random tensor (Box–Muller; avoids a rand_distr dependency).
    pub fn rand_normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel())
            .map(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                mean + std * z
            })
            .collect();
        Tensor { shape, data }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The raw buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// The raw buffer, mutably.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-index.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// The single value of a scalar tensor.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape.numel(), 1, "item() requires a scalar, got {}", self.shape);
        self.data[0]
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(shape.numel(), self.shape.numel(), "reshape {} -> {shape}", self.shape);
        self.shape = shape;
        self
    }

    /// A view of row `r` when the tensor is interpreted as
    /// `[outer_numel, last_dim]`.
    pub fn row(&self, r: usize) -> &[f32] {
        let d = self.shape.last_dim();
        &self.data[r * d..(r + 1) * d]
    }

    /// Mutable view of row `r` (flattened-over-last-axis interpretation).
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let d = self.shape.last_dim();
        &mut self.data[r * d..(r + 1) * d]
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two same-shaped tensors elementwise.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "zip shape mismatch {} vs {}", self.shape, other.shape);
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += alpha * other` (axpy). Shapes must match.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// In-place scale by a constant.
    pub fn scale_inplace(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared L2 norm of the whole buffer.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Dense matrix product `self[m,k] @ rhs[k,n] -> [m,n]` (ikj loop order
    /// so the inner loop streams contiguously — see the perf-book guidance).
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(rhs.shape.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (rhs.shape.dim(0), rhs.shape.dim(1));
        assert_eq!(k, k2, "matmul inner dim mismatch: {} vs {}", self.shape, rhs.shape);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[p * n..(p + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Tensor::from_vec(Shape::matrix(m, n), out)
    }

    /// `self[m,k] @ rhs[n,k]^T -> [m,n]`, used for in-batch logit matrices.
    pub fn matmul_transpose_b(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.rank(), 2);
        assert_eq!(rhs.shape.rank(), 2);
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (n, k2) = (rhs.shape.dim(0), rhs.shape.dim(1));
        assert_eq!(k, k2, "matmul_transpose_b inner dim mismatch");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &rhs.data[j * k..(j + 1) * k];
                out[i * n + j] = dot(a_row, b_row);
            }
        }
        Tensor::from_vec(Shape::matrix(m, n), out)
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose requires rank 2");
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(Shape::matrix(n, m), out)
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self.data.iter().take(8).map(|x| format!("{x:.4}")).collect();
        write!(f, "[{}{}]", preview.join(", "), if self.data.len() > 8 { ", …" } else { "" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constructors() {
        let t = Tensor::zeros([2, 3]);
        assert_eq!(t.sum(), 0.0);
        let t = Tensor::full([4], 2.5);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
    }

    #[test]
    fn indexing() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.at(&[0, 2]), 3.0);
        assert_eq!(t.at(&[1, 0]), 4.0);
        assert_eq!(t.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Tensor::rand_normal([4, 5], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal([3, 5], 0.0, 1.0, &mut rng);
        let fast = a.matmul_transpose_b(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Tensor::rand_uniform([3, 4], -1.0, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let t = Tensor::rand_normal([10_000], 1.0, 2.0, &mut rng);
        let mean = t.sum() / 10_000.0;
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones([3]);
        let b = Tensor::vector(&[1., 2., 3.]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3., 5., 7.]);
        a.scale_inplace(0.5);
        assert_eq!(a.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_len_checked() {
        Tensor::from_vec([2, 2], vec![1.0; 3]);
    }
}
