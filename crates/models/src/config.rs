//! Model configuration: the paper's grid of context extractors and
//! sequence aggregators (Tab. XII).

/// The context-extraction layer of the user encoder (Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ContextExtractor {
    /// Youtube-DNN: no context extraction — lookup embeddings go straight
    /// to the aggregation layer (the paper's production default).
    YoutubeDnn,
    /// One-layer same-padded 1-D convolution (Caser-style) with ReLU.
    Cnn {
        /// Odd kernel width over the sequence axis.
        kernel: usize,
    },
    /// Single-layer GRU (GRU4Rec-style).
    Gru,
    /// Single-layer LSTM.
    Lstm,
    /// One Transformer block (SASRec-style): learned positions, single-head
    /// self-attention with key-padding mask, FFN, residuals + layer norm.
    Transformer,
}

impl ContextExtractor {
    /// The five extractors in Tab. XII column order.
    pub const ALL: [ContextExtractor; 5] = [
        ContextExtractor::YoutubeDnn,
        ContextExtractor::Cnn { kernel: 3 },
        ContextExtractor::Gru,
        ContextExtractor::Lstm,
        ContextExtractor::Transformer,
    ];

    /// Display label matching the paper's table header.
    pub fn label(self) -> &'static str {
        match self {
            ContextExtractor::YoutubeDnn => "Youtube-DNN",
            ContextExtractor::Cnn { .. } => "CNN-l1",
            ContextExtractor::Gru => "GRU",
            ContextExtractor::Lstm => "LSTM",
            ContextExtractor::Transformer => "Transformer-l1",
        }
    }
}

/// The aggregation layer pooling per-position context vectors into one user
/// representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Aggregator {
    /// Mean over valid positions (the paper's production default).
    Mean,
    /// The last valid position's vector.
    Last,
    /// Elementwise max over valid positions (reported "always worse" and
    /// omitted from Tab. XII, but implemented for completeness).
    Max,
    /// Attention pooling with a learned query vector.
    Attention,
}

impl Aggregator {
    /// The aggregators reported in Tab. XII (max pooling is omitted there).
    pub const REPORTED: [Aggregator; 3] = [Aggregator::Mean, Aggregator::Last, Aggregator::Attention];

    /// All aggregators including max pooling.
    pub const ALL: [Aggregator; 4] = [
        Aggregator::Mean,
        Aggregator::Last,
        Aggregator::Max,
        Aggregator::Attention,
    ];

    /// Display label matching the paper's table rows.
    pub fn label(self) -> &'static str {
        match self {
            Aggregator::Mean => "mean",
            Aggregator::Last => "last",
            Aggregator::Max => "max",
            Aggregator::Attention => "attn",
        }
    }
}

/// Full two-tower model configuration.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ModelConfig {
    /// Item vocabulary size.
    pub num_items: usize,
    /// Embedding / representation dimension `d` (paper: 16).
    pub embed_dim: usize,
    /// Maximum history length the model will ever see (positional table
    /// size for the Transformer).
    pub max_seq_len: usize,
    /// Context extractor choice.
    pub extractor: ContextExtractor,
    /// Aggregator choice.
    pub aggregator: Aggregator,
    /// Softmax temperature `τ` of Eq. 13.
    pub temperature: f32,
    /// L2-normalize tower outputs before the dot product (Eq. 13). The
    /// paper found normalization + temperature "better and robust"; set
    /// false only for the ablation experiment.
    pub normalize: bool,
}

impl ModelConfig {
    /// The paper's production default: Youtube-DNN + mean pooling, d = 16.
    pub fn youtube_dnn_mean(num_items: usize, max_seq_len: usize, temperature: f32) -> Self {
        ModelConfig {
            num_items,
            embed_dim: 16,
            max_seq_len,
            extractor: ContextExtractor::YoutubeDnn,
            aggregator: Aggregator::Mean,
            temperature,
            normalize: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            ContextExtractor::ALL.iter().map(|e| e.label()).collect();
        assert_eq!(labels.len(), ContextExtractor::ALL.len());
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = ModelConfig::youtube_dnn_mean(100, 20, 0.1667);
        assert_eq!(cfg.embed_dim, 16);
        assert_eq!(cfg.extractor, ContextExtractor::YoutubeDnn);
        assert_eq!(cfg.aggregator, Aggregator::Mean);
    }
}
