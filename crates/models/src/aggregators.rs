//! Sequence aggregators: `[B,L,d] -> [B,d]` pooling of the per-position
//! context vectors (the aggregation layer of Fig. 2).

use crate::config::Aggregator;
use rand::Rng;
use unimatch_tensor::{Graph, ParamId, ParamSet, Tensor, Var};

/// Parameter handles of one instantiated aggregator.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum AggregatorParams {
    /// Mean pooling over valid positions.
    Mean,
    /// Last valid position.
    Last,
    /// Elementwise max over valid positions.
    Max,
    /// Attention pooling with a learned query `[d]`.
    Attention {
        /// The query vector parameter.
        query: ParamId,
    },
}

impl AggregatorParams {
    /// Registers parameters (if any) for the chosen aggregator.
    pub fn new(kind: Aggregator, d: usize, params: &mut ParamSet, rng: &mut impl Rng) -> Self {
        match kind {
            Aggregator::Mean => AggregatorParams::Mean,
            Aggregator::Last => AggregatorParams::Last,
            Aggregator::Max => AggregatorParams::Max,
            Aggregator::Attention => AggregatorParams::Attention {
                query: params.add(
                    "agg.attn_query",
                    Tensor::rand_normal([d], 0.0, 1.0 / (d as f32).sqrt(), rng),
                ),
            },
        }
    }

    /// Pools a context batch `ctx: [B,L,d]` into `[B,d]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        params: &ParamSet,
        ctx: Var,
        mask: &[f32],
        lengths: &[usize],
    ) -> Var {
        let dims = g.value(ctx).shape().dims().to_vec();
        let (b, l, d) = (dims[0], dims[1], dims[2]);
        match self {
            AggregatorParams::Mean => g.mean_pool_masked(ctx, mask),
            AggregatorParams::Last => g.last_pool(ctx, lengths),
            AggregatorParams::Max => g.max_pool_masked(ctx, mask),
            AggregatorParams::Attention { query } => {
                let q = g.param(params, *query);
                let flat = g.reshape(ctx, [b * l, d]);
                // scores[b,l] = <ctx[b,l,:], q>
                let scored = g.mul_row_broadcast(flat, q);
                let ones = g.constant(Tensor::ones([d, 1]));
                let scores = g.matmul(scored, ones); // [B*L, 1]
                let scores = g.reshape(scores, [b, l]);
                let weights = g.masked_softmax(scores, mask);
                g.weighted_sum_pool(weights, ctx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup(kind: Aggregator) -> (Graph, Var) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut params = ParamSet::new();
        let agg = AggregatorParams::new(kind, 4, &mut params, &mut rng);
        let mut g = Graph::new();
        let ctx = g.input(Tensor::rand_uniform([2, 3, 4], -1.0, 1.0, &mut rng));
        let mask = vec![1., 1., 0., 1., 1., 1.];
        let out = agg.forward(&mut g, &params, ctx, &mask, &[2, 3]);
        (g, out)
    }

    #[test]
    fn all_aggregators_produce_expected_shape() {
        for kind in Aggregator::ALL {
            let (g, out) = setup(kind);
            assert_eq!(g.value(out).shape().dims(), &[2, 4], "{}", kind.label());
            assert!(g.value(out).data().iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn attention_weights_ignore_padding() {
        // With position 2 of row 0 masked, attention output must not depend
        // on its (random) content: perturb it and compare.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut params = ParamSet::new();
        let agg = AggregatorParams::new(Aggregator::Attention, 4, &mut params, &mut rng);
        let mask = vec![1., 1., 0.];
        let base = Tensor::rand_uniform([1, 3, 4], -1.0, 1.0, &mut rng);
        let mut poked = base.clone();
        for j in 0..4 {
            *poked.at_mut(&[0, 2, j]) += 5.0;
        }
        let run = |input: Tensor| {
            let mut g = Graph::new();
            let ctx = g.constant(input);
            let out = agg.forward(&mut g, &params, ctx, &mask, &[2]);
            g.value(out).data().to_vec()
        };
        assert_eq!(run(base), run(poked));
    }

    #[test]
    fn aggregators_are_differentiable() {
        for kind in Aggregator::ALL {
            let (mut g, out) = setup(kind);
            let sq = g.mul(out, out);
            let loss = g.sum_all(sq);
            g.backward(loss);
        }
    }
}
