//! The two-tower architecture of Fig. 2.
//!
//! Users' behavior sequences and item ids enter separate encoders that
//! **share one item-embedding lookup table**; each tower outputs a
//! d-dimensional vector, which is L2-normalized; the rescaled dot product
//! `φ_θ(u,i) = <u|i> / (τ‖u‖‖i‖)` (Eq. 13) feeds the losses. No feature
//! crossing happens before the final logit, so embeddings can be inferred
//! per-tower and served through ANN search.

use crate::aggregators::AggregatorParams;
use crate::config::ModelConfig;
use crate::extractors::ExtractorParams;
use rand::Rng;
use unimatch_data::SeqBatch;
use unimatch_tensor::{init, Graph, ParamId, ParamSet, Tensor, Var};

/// Epsilon floor for L2 normalization.
const NORM_EPS: f32 = 1e-12;

/// A two-tower matching model: shared item table + user encoder
/// (extractor → aggregator) + item encoder (lookup).
#[derive(Debug)]
pub struct TwoTower {
    cfg: ModelConfig,
    /// All trainable parameters (item table, extractor, aggregator).
    pub params: ParamSet,
    item_table: ParamId,
    extractor: ExtractorParams,
    aggregator: AggregatorParams,
}

impl TwoTower {
    /// Initializes a model per `cfg`, deterministically from `rng`.
    pub fn new(cfg: ModelConfig, rng: &mut impl Rng) -> Self {
        assert!(cfg.num_items >= 1, "empty item vocabulary");
        assert!(cfg.embed_dim >= 2, "embed_dim must be >= 2");
        let mut params = ParamSet::new();
        let item_table = params.add(
            "item_embedding",
            init::embedding_normal(cfg.num_items, cfg.embed_dim, rng),
        );
        let extractor =
            ExtractorParams::new(cfg.extractor, cfg.embed_dim, cfg.max_seq_len, &mut params, rng);
        let aggregator = AggregatorParams::new(cfg.aggregator, cfg.embed_dim, &mut params, rng);
        TwoTower { cfg, params, item_table, extractor, aggregator }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Handle to the shared item embedding table.
    pub fn item_table(&self) -> ParamId {
        self.item_table
    }

    /// User tower: embeds the history batch, extracts context, aggregates,
    /// L2-normalizes. Returns `[B, d]`.
    pub fn user_tower(&self, g: &mut Graph, batch: &SeqBatch) -> Var {
        let e = g.embedding(&self.params, self.item_table, &batch.indices);
        let e = g.reshape(e, [batch.b, batch.l, self.cfg.embed_dim]);
        // zero padded positions so convolution/attention see clean input
        let mv = g.constant(Tensor::from_vec([batch.b * batch.l], batch.mask.clone()));
        let e = g.scale_rows(e, mv);
        let ctx = self.extractor.forward(g, &self.params, e, &batch.mask);
        let pooled = self
            .aggregator
            .forward(g, &self.params, ctx, &batch.mask, &batch.lengths);
        if self.cfg.normalize {
            g.l2_normalize_rows(pooled, NORM_EPS)
        } else {
            pooled
        }
    }

    /// Item tower: direct lookup, L2-normalized. Returns `[N, d]`.
    pub fn item_tower(&self, g: &mut Graph, items: &[u32]) -> Var {
        let e = g.embedding(&self.params, self.item_table, items);
        if self.cfg.normalize {
            g.l2_normalize_rows(e, NORM_EPS)
        } else {
            e
        }
    }

    /// In-batch logit matrix `φ_θ(u_r, i_c) = <u_r|i_c>/τ` over normalized
    /// tower outputs: `[B_u, B_i]`.
    pub fn inbatch_logits(&self, g: &mut Graph, users: Var, items: Var) -> Var {
        let sims = g.matmul_transpose_b(users, items);
        g.scale(sims, 1.0 / self.cfg.temperature)
    }

    /// Row-aligned pair logits `φ_θ(u_b, i_b)`: `[B]` (the BCE pathway).
    pub fn pair_logits(&self, g: &mut Graph, users: Var, items: Var) -> Var {
        let d = self.cfg.embed_dim;
        let prod = g.mul(users, items);
        let ones = g.constant(Tensor::ones([d, 1]));
        let dots = g.matmul(prod, ones);
        let b = g.value(dots).shape().dim(0);
        let dots = g.reshape(dots, [b]);
        g.scale(dots, 1.0 / self.cfg.temperature)
    }

    /// Inference: normalized user embeddings for a batch, off-graph.
    pub fn infer_users(&self, batch: &SeqBatch) -> Tensor {
        let mut g = Graph::new();
        let u = self.user_tower(&mut g, batch);
        g.value(u).clone()
    }

    /// Inference: the full item-embedding matrix `[K, d]` (normalized per
    /// the config).
    pub fn infer_items(&self) -> Tensor {
        let table = self.params.get(self.item_table);
        if !self.cfg.normalize {
            return table.clone();
        }
        let (k, d) = (table.shape().dim(0), table.shape().dim(1));
        let mut out = Tensor::zeros([k, d]);
        for r in 0..k {
            let row = table.row(r);
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(NORM_EPS);
            let dst = out.row_mut(r);
            for (o, &x) in dst.iter_mut().zip(row) {
                *o = x / norm;
            }
        }
        out
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Aggregator, ContextExtractor};
    use rand::SeedableRng;

    fn batch() -> SeqBatch {
        let h1 = vec![1u32, 2, 3];
        let h2 = vec![4u32];
        SeqBatch::from_histories(&[&h1, &h2], 4)
    }

    fn model(extractor: ContextExtractor, aggregator: Aggregator) -> TwoTower {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        TwoTower::new(
            ModelConfig {
                num_items: 10,
                embed_dim: 8,
                max_seq_len: 4,
                extractor,
                aggregator,
                temperature: 0.2,
                normalize: true,
            },
            &mut rng,
        )
    }

    #[test]
    fn towers_produce_unit_vectors() {
        for ext in ContextExtractor::ALL {
            let m = model(ext, Aggregator::Mean);
            let mut g = Graph::new();
            let u = m.user_tower(&mut g, &batch());
            let t = g.value(u);
            for r in 0..2 {
                let n: f32 = t.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
                assert!((n - 1.0).abs() < 1e-4, "{}: norm {n}", ext.label());
            }
            let i = m.item_tower(&mut g, &[0, 5, 9]);
            let t = g.value(i);
            for r in 0..3 {
                let n: f32 = t.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
                assert!((n - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn logits_bounded_by_temperature() {
        let m = model(ContextExtractor::YoutubeDnn, Aggregator::Mean);
        let mut g = Graph::new();
        let u = m.user_tower(&mut g, &batch());
        let i = m.item_tower(&mut g, &[3, 7]);
        let logits = m.inbatch_logits(&mut g, u, i);
        assert_eq!(g.value(logits).shape().dims(), &[2, 2]);
        let bound = 1.0 / 0.2 + 1e-4;
        assert!(g.value(logits).data().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn pair_logits_match_diagonal_of_inbatch() {
        let m = model(ContextExtractor::Gru, Aggregator::Last);
        let mut g = Graph::new();
        let u = m.user_tower(&mut g, &batch());
        let i = m.item_tower(&mut g, &[3, 7]);
        let full = m.inbatch_logits(&mut g, u, i);
        let diag = g.diag(full);
        let pairs = m.pair_logits(&mut g, u, i);
        for (a, b) in g.value(diag).data().iter().zip(g.value(pairs).data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn inference_matches_graph_forward() {
        let m = model(ContextExtractor::Cnn { kernel: 3 }, Aggregator::Attention);
        let b = batch();
        let inferred = m.infer_users(&b);
        let mut g = Graph::new();
        let u = m.user_tower(&mut g, &b);
        assert_eq!(g.value(u).data(), inferred.data());
        let items = m.infer_items();
        assert_eq!(items.shape().dims(), &[10, 8]);
        for r in 0..10 {
            let n: f32 = items.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn shared_item_table_between_towers() {
        // Training the user tower must move item embeddings: both towers
        // look up the same ParamId.
        let m = model(ContextExtractor::YoutubeDnn, Aggregator::Mean);
        let mut g = Graph::new();
        let u = m.user_tower(&mut g, &batch());
        let loss0 = g.mul(u, u);
        let loss = g.sum_all(loss0);
        g.backward(loss);
        let sg = g.sparse_grads();
        assert!(sg.contains_key(&m.item_table()));
    }

    #[test]
    fn gradcheck_youtube_dnn_end_to_end() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut m = TwoTower::new(
            ModelConfig {
                num_items: 6,
                embed_dim: 4,
                max_seq_len: 3,
                extractor: ContextExtractor::YoutubeDnn,
                aggregator: Aggregator::Mean,
                temperature: 0.5,
                normalize: true,
            },
            &mut rng,
        );
        let h1 = vec![1u32, 2];
        let h2 = vec![3u32, 4, 5];
        let b = SeqBatch::from_histories(&[&h1, &h2], 3);
        let cfg = m.cfg.clone();
        let (item_table, extractor, aggregator) =
            (m.item_table, m.extractor.clone(), m.aggregator.clone());
        unimatch_tensor::check::gradcheck(&mut m.params, 3e-2, 3e-2, move |g, p| {
            let shadow = TwoTower {
                cfg: cfg.clone(),
                params: p.clone(),
                item_table,
                extractor: extractor.clone(),
                aggregator: aggregator.clone(),
            };
            let u = shadow.user_tower(g, &b);
            let i = shadow.item_tower(g, &[0, 2]);
            let logits = shadow.inbatch_logits(g, u, i);
            let ls = g.log_softmax(logits);
            let d = g.diag(ls);
            let m0 = g.mean_all(d);
            g.scale(m0, -1.0)
        });
    }
}
