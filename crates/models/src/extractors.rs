//! Context extractors: per-position sequence encoders `[B,L,d] -> [B,L,d]`.
//!
//! Each extractor owns its parameters (registered in the shared
//! [`ParamSet`] at construction) and is a pure function of the graph at
//! forward time. Padded positions are pre-zeroed by the caller; recurrent
//! extractors additionally gate their state with the mask so padding never
//! corrupts the hidden state.

use crate::config::ContextExtractor;
use rand::Rng;
use unimatch_tensor::{init, Graph, ParamId, ParamSet, Tensor, Var};

/// Parameter handles of one instantiated context extractor.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum ExtractorParams {
    /// No parameters: identity.
    YoutubeDnn,
    /// Convolution weight `[k, d, d]` and bias `[d]`.
    Cnn {
        /// Kernel tensor id.
        weight: ParamId,
        /// Bias id.
        bias: ParamId,
        /// Kernel width.
        kernel: usize,
    },
    /// GRU gate weights.
    Gru {
        /// Input→{z,r,h} weights, each `[d, d]`.
        w_xz: ParamId,
        /// Hidden→z.
        w_hz: ParamId,
        /// Input→r.
        w_xr: ParamId,
        /// Hidden→r.
        w_hr: ParamId,
        /// Input→candidate.
        w_xh: ParamId,
        /// Hidden→candidate.
        w_hh: ParamId,
        /// Gate biases `[d]` each.
        b_z: ParamId,
        /// Reset bias.
        b_r: ParamId,
        /// Candidate bias.
        b_h: ParamId,
    },
    /// LSTM gate weights.
    Lstm {
        /// Input→{i,f,o,g} weights.
        w_xi: ParamId,
        /// Hidden→input gate.
        w_hi: ParamId,
        /// Input→forget gate.
        w_xf: ParamId,
        /// Hidden→forget gate.
        w_hf: ParamId,
        /// Input→output gate.
        w_xo: ParamId,
        /// Hidden→output gate.
        w_ho: ParamId,
        /// Input→cell candidate.
        w_xg: ParamId,
        /// Hidden→cell candidate.
        w_hg: ParamId,
        /// Biases.
        b_i: ParamId,
        /// Forget bias (init 1.0, the standard trick).
        b_f: ParamId,
        /// Output bias.
        b_o: ParamId,
        /// Candidate bias.
        b_g: ParamId,
    },
    /// One Transformer block.
    Transformer {
        /// Learned positional embeddings `[max_len, d]`.
        pos: ParamId,
        /// Query projection `[d, d]`.
        w_q: ParamId,
        /// Key projection.
        w_k: ParamId,
        /// Value projection.
        w_v: ParamId,
        /// Output projection.
        w_o: ParamId,
        /// FFN expand `[d, 4d]`.
        w_ff1: ParamId,
        /// FFN bias `[4d]`.
        b_ff1: ParamId,
        /// FFN contract `[4d, d]`.
        w_ff2: ParamId,
        /// FFN bias `[d]`.
        b_ff2: ParamId,
    },
}

impl ExtractorParams {
    /// Registers the parameters for `kind` with embedding dim `d`.
    pub fn new(
        kind: ContextExtractor,
        d: usize,
        max_seq_len: usize,
        params: &mut ParamSet,
        rng: &mut impl Rng,
    ) -> Self {
        match kind {
            ContextExtractor::YoutubeDnn => ExtractorParams::YoutubeDnn,
            ContextExtractor::Cnn { kernel } => {
                assert!(kernel % 2 == 1, "CNN kernel must be odd for same padding");
                ExtractorParams::Cnn {
                    weight: params.add("cnn.weight", init::xavier_uniform_shaped([kernel, d, d], rng)),
                    bias: params.add("cnn.bias", Tensor::zeros([d])),
                    kernel,
                }
            }
            ContextExtractor::Gru => ExtractorParams::Gru {
                w_xz: params.add("gru.w_xz", init::recurrent_normal(d, d, rng)),
                w_hz: params.add("gru.w_hz", init::recurrent_normal(d, d, rng)),
                w_xr: params.add("gru.w_xr", init::recurrent_normal(d, d, rng)),
                w_hr: params.add("gru.w_hr", init::recurrent_normal(d, d, rng)),
                w_xh: params.add("gru.w_xh", init::recurrent_normal(d, d, rng)),
                w_hh: params.add("gru.w_hh", init::recurrent_normal(d, d, rng)),
                b_z: params.add("gru.b_z", Tensor::zeros([d])),
                b_r: params.add("gru.b_r", Tensor::zeros([d])),
                b_h: params.add("gru.b_h", Tensor::zeros([d])),
            },
            ContextExtractor::Lstm => ExtractorParams::Lstm {
                w_xi: params.add("lstm.w_xi", init::recurrent_normal(d, d, rng)),
                w_hi: params.add("lstm.w_hi", init::recurrent_normal(d, d, rng)),
                w_xf: params.add("lstm.w_xf", init::recurrent_normal(d, d, rng)),
                w_hf: params.add("lstm.w_hf", init::recurrent_normal(d, d, rng)),
                w_xo: params.add("lstm.w_xo", init::recurrent_normal(d, d, rng)),
                w_ho: params.add("lstm.w_ho", init::recurrent_normal(d, d, rng)),
                w_xg: params.add("lstm.w_xg", init::recurrent_normal(d, d, rng)),
                w_hg: params.add("lstm.w_hg", init::recurrent_normal(d, d, rng)),
                b_i: params.add("lstm.b_i", Tensor::zeros([d])),
                b_f: params.add("lstm.b_f", Tensor::ones([d])),
                b_o: params.add("lstm.b_o", Tensor::zeros([d])),
                b_g: params.add("lstm.b_g", Tensor::zeros([d])),
            },
            ContextExtractor::Transformer => ExtractorParams::Transformer {
                pos: params.add(
                    "tfm.pos",
                    Tensor::rand_normal([max_seq_len, d], 0.0, 0.02, rng),
                ),
                w_q: params.add("tfm.w_q", init::xavier_uniform(d, d, rng)),
                w_k: params.add("tfm.w_k", init::xavier_uniform(d, d, rng)),
                w_v: params.add("tfm.w_v", init::xavier_uniform(d, d, rng)),
                w_o: params.add("tfm.w_o", init::xavier_uniform(d, d, rng)),
                w_ff1: params.add("tfm.w_ff1", init::xavier_uniform(d, 4 * d, rng)),
                b_ff1: params.add("tfm.b_ff1", Tensor::zeros([4 * d])),
                w_ff2: params.add("tfm.w_ff2", init::xavier_uniform(4 * d, d, rng)),
                b_ff2: params.add("tfm.b_ff2", Tensor::zeros([d])),
            },
        }
    }

    /// Runs the extractor over an embedded batch `e: [B,L,d]` with its
    /// validity mask (`[B*L]`, 1 = real position). Returns `[B,L,d]`.
    pub fn forward(
        &self,
        g: &mut Graph,
        params: &ParamSet,
        e: Var,
        mask: &[f32],
    ) -> Var {
        let dims = g.value(e).shape().dims().to_vec();
        let (b, l, d) = (dims[0], dims[1], dims[2]);
        match self {
            ExtractorParams::YoutubeDnn => e,
            ExtractorParams::Cnn { weight, bias, .. } => {
                let w = g.param(params, *weight);
                let conv = g.conv1d_same(e, w);
                let bv = g.param(params, *bias);
                let biased = g.add_row_broadcast(conv, bv);
                g.relu(biased)
            }
            ExtractorParams::Gru {
                w_xz, w_hz, w_xr, w_hr, w_xh, w_hh, b_z, b_r, b_h,
            } => {
                let (w_xz, w_hz) = (g.param(params, *w_xz), g.param(params, *w_hz));
                let (w_xr, w_hr) = (g.param(params, *w_xr), g.param(params, *w_hr));
                let (w_xh, w_hh) = (g.param(params, *w_xh), g.param(params, *w_hh));
                let (b_z, b_r, b_h) = (
                    g.param(params, *b_z),
                    g.param(params, *b_r),
                    g.param(params, *b_h),
                );
                let mut h = g.constant(Tensor::zeros([b, d]));
                let mut outs = Vec::with_capacity(l);
                for t in 0..l {
                    let x = g.slice_time(e, t);
                    let xz = g.matmul(x, w_xz);
                    let hz = g.matmul(h, w_hz);
                    let zsum = g.add(xz, hz);
                    let zb = g.add_row_broadcast(zsum, b_z);
                    let z = g.sigmoid(zb);
                    let xr = g.matmul(x, w_xr);
                    let hr = g.matmul(h, w_hr);
                    let rsum = g.add(xr, hr);
                    let rb = g.add_row_broadcast(rsum, b_r);
                    let r = g.sigmoid(rb);
                    let rh = g.mul(r, h);
                    let xh = g.matmul(x, w_xh);
                    let rhh = g.matmul(rh, w_hh);
                    let hsum = g.add(xh, rhh);
                    let hb = g.add_row_broadcast(hsum, b_h);
                    let cand = g.tanh(hb);
                    // h' = (1 - z) ⊙ h + z ⊙ cand
                    let zc = g.mul(z, cand);
                    let zh = g.mul(z, h);
                    let h_cand = g.add(h, zc);
                    let h_new = g.sub(h_cand, zh);
                    h = gate_by_mask(g, h_new, h, mask, t, b, l);
                    outs.push(h);
                }
                g.stack_time(&outs)
            }
            ExtractorParams::Lstm {
                w_xi, w_hi, w_xf, w_hf, w_xo, w_ho, w_xg, w_hg, b_i, b_f, b_o, b_g,
            } => {
                let (w_xi, w_hi) = (g.param(params, *w_xi), g.param(params, *w_hi));
                let (w_xf, w_hf) = (g.param(params, *w_xf), g.param(params, *w_hf));
                let (w_xo, w_ho) = (g.param(params, *w_xo), g.param(params, *w_ho));
                let (w_xg, w_hg) = (g.param(params, *w_xg), g.param(params, *w_hg));
                let (b_i, b_f, b_o, b_g) = (
                    g.param(params, *b_i),
                    g.param(params, *b_f),
                    g.param(params, *b_o),
                    g.param(params, *b_g),
                );
                let mut h = g.constant(Tensor::zeros([b, d]));
                let mut c = g.constant(Tensor::zeros([b, d]));
                let mut outs = Vec::with_capacity(l);
                let gate = |g: &mut Graph, x: Var, hh: Var, wx: Var, wh: Var, bb: Var| {
                    let a = g.matmul(x, wx);
                    let b2 = g.matmul(hh, wh);
                    let s = g.add(a, b2);
                    g.add_row_broadcast(s, bb)
                };
                for t in 0..l {
                    let x = g.slice_time(e, t);
                    let i_pre = gate(g, x, h, w_xi, w_hi, b_i);
                    let i_g = g.sigmoid(i_pre);
                    let f_pre = gate(g, x, h, w_xf, w_hf, b_f);
                    let f_g = g.sigmoid(f_pre);
                    let o_pre = gate(g, x, h, w_xo, w_ho, b_o);
                    let o_g = g.sigmoid(o_pre);
                    let g_pre = gate(g, x, h, w_xg, w_hg, b_g);
                    let g_c = g.tanh(g_pre);
                    let fc = g.mul(f_g, c);
                    let ig = g.mul(i_g, g_c);
                    let c_new = g.add(fc, ig);
                    let tc = g.tanh(c_new);
                    let h_new = g.mul(o_g, tc);
                    c = gate_by_mask(g, c_new, c, mask, t, b, l);
                    h = gate_by_mask(g, h_new, h, mask, t, b, l);
                    outs.push(h);
                }
                g.stack_time(&outs)
            }
            ExtractorParams::Transformer {
                pos, w_q, w_k, w_v, w_o, w_ff1, b_ff1, w_ff2, b_ff2,
            } => {
                // add positional embeddings (first l rows of the table)
                let pos_t = params.get(*pos);
                assert!(l <= pos_t.shape().dim(0), "sequence longer than positional table");
                let pos_v = g.param(params, *pos);
                // broadcast positions over the batch by building [B,L,d]
                // from replicated rows, staying on-graph so the positional
                // table still receives gradients.
                let mut rows = Vec::with_capacity(l);
                for t in 0..l {
                    // pick row t of the positional table for every batch row
                    let idx = vec![t; b];
                    // pos_v is [max_len, d]; replicate row t into [B, d]
                    let picked = replicate_row(g, pos_v, &idx, d);
                    rows.push(picked);
                }
                let pos_seq = g.stack_time(&rows);
                let x = g.add(e, pos_seq);
                // zero out padded positions again (they got position vectors)
                let mv = g.constant(Tensor::from_vec([b * l], mask.to_vec()));
                let x = g.scale_rows(x, mv);

                let flat = g.reshape(x, [b * l, d]);
                let (w_q, w_k, w_v_p, w_o) = (
                    g.param(params, *w_q),
                    g.param(params, *w_k),
                    g.param(params, *w_v),
                    g.param(params, *w_o),
                );
                let q = g.matmul(flat, w_q);
                let k = g.matmul(flat, w_k);
                let v = g.matmul(flat, w_v_p);
                let q = g.reshape(q, [b, l, d]);
                let k = g.reshape(k, [b, l, d]);
                let v = g.reshape(v, [b, l, d]);
                let scores = g.batch_matmul_transpose_b(q, k); // [B,L,L]
                let scores = g.scale(scores, 1.0 / (d as f32).sqrt());
                // key-padding mask: query row (b, i) may attend to key j iff
                // mask[b, j] = 1
                let mut attn_mask = vec![0.0f32; b * l * l];
                for bi in 0..b {
                    for i in 0..l {
                        for j in 0..l {
                            attn_mask[(bi * l + i) * l + j] = mask[bi * l + j];
                        }
                    }
                }
                let attn = g.masked_softmax(scores, &attn_mask);
                let ctx = g.batch_matmul(attn, v); // [B,L,d]
                let ctx_flat = g.reshape(ctx, [b * l, d]);
                let proj = g.matmul(ctx_flat, w_o);
                let proj = g.reshape(proj, [b, l, d]);
                let res1 = g.add(x, proj);
                let norm1 = g.layer_norm(res1, 1e-5);
                // FFN
                let (w1, b1, w2, b2) = (
                    g.param(params, *w_ff1),
                    g.param(params, *b_ff1),
                    g.param(params, *w_ff2),
                    g.param(params, *b_ff2),
                );
                let nf = g.reshape(norm1, [b * l, d]);
                let h1 = g.matmul(nf, w1);
                let h1 = g.add_row_broadcast(h1, b1);
                let h1 = g.relu(h1);
                let h2 = g.matmul(h1, w2);
                let h2 = g.add_row_broadcast(h2, b2);
                let h2 = g.reshape(h2, [b, l, d]);
                let res2 = g.add(norm1, h2);
                g.layer_norm(res2, 1e-5)
            }
        }
    }
}

/// `new = m_t ⊙ candidate + (1 - m_t) ⊙ previous`, gating recurrent state
/// so padded steps carry the state through unchanged.
fn gate_by_mask(
    g: &mut Graph,
    candidate: Var,
    previous: Var,
    mask: &[f32],
    t: usize,
    b: usize,
    l: usize,
) -> Var {
    let m: Vec<f32> = (0..b).map(|bi| mask[bi * l + t]).collect();
    if m.iter().all(|&x| x > 0.5) {
        return candidate;
    }
    let inv: Vec<f32> = m.iter().map(|&x| 1.0 - x).collect();
    let mv = g.constant(Tensor::from_vec([b], m));
    let iv = g.constant(Tensor::from_vec([b], inv));
    let a = g.scale_rows(candidate, mv);
    let bshare = g.scale_rows(previous, iv);
    g.add(a, bshare)
}

/// Replicates one row of a `[V, d]` matrix into `[B, d]` (used to broadcast
/// positional embeddings across a batch) while keeping gradients flowing to
/// that row.
fn replicate_row(g: &mut Graph, table: Var, row_per_batch: &[usize], d: usize) -> Var {
    let b = row_per_batch.len();
    // Build a selection matrix S [B, V] with S[r, row[r]] = 1: then S @ table.
    let v = g.value(table).shape().dim(0);
    let mut sel = Tensor::zeros([b, v]);
    for (r, &row) in row_per_batch.iter().enumerate() {
        sel.data_mut()[r * v + row] = 1.0;
    }
    let sv = g.constant(sel);
    let out = g.matmul(sv, table);
    debug_assert_eq!(g.value(out).shape().dims(), &[b, d]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use unimatch_tensor::Graph;

    fn run(kind: ContextExtractor) -> (Graph, Var, Vec<f32>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut params = ParamSet::new();
        let ext = ExtractorParams::new(kind, 4, 5, &mut params, &mut rng);
        let mut g = Graph::new();
        let e = g.input(Tensor::rand_uniform([2, 5, 4], -1.0, 1.0, &mut rng));
        let mask = vec![1., 1., 1., 0., 0., 1., 1., 1., 1., 1.];
        // zero padded positions as the caller (TwoTower) does
        let mv = g.constant(Tensor::from_vec([10], mask.clone()));
        let e = g.scale_rows(e, mv);
        let out = ext.forward(&mut g, &params, e, &mask);
        (g, out, mask)
    }

    #[test]
    fn all_extractors_produce_expected_shape() {
        for kind in ContextExtractor::ALL {
            let (g, out, _) = run(kind);
            assert_eq!(g.value(out).shape().dims(), &[2, 5, 4], "{}", kind.label());
            assert!(g.value(out).data().iter().all(|x| x.is_finite()), "{}", kind.label());
        }
    }

    #[test]
    fn recurrent_state_unchanged_on_padded_steps() {
        // With GRU, outputs at padded steps must equal the last valid state.
        let (g, out, _) = run(ContextExtractor::Gru);
        let t = g.value(out);
        // row 0 has mask [1,1,1,0,0]: steps 3 and 4 repeat step 2's state
        for j in 0..4 {
            let s2 = t.at(&[0, 2, j]);
            assert!((t.at(&[0, 3, j]) - s2).abs() < 1e-6);
            assert!((t.at(&[0, 4, j]) - s2).abs() < 1e-6);
        }
    }

    #[test]
    fn lstm_state_unchanged_on_padded_steps() {
        let (g, out, _) = run(ContextExtractor::Lstm);
        let t = g.value(out);
        for j in 0..4 {
            let s2 = t.at(&[0, 2, j]);
            assert!((t.at(&[0, 3, j]) - s2).abs() < 1e-6);
        }
    }

    #[test]
    fn extractors_are_differentiable() {
        for kind in ContextExtractor::ALL {
            let mut rng = rand::rngs::StdRng::seed_from_u64(10);
            let mut params = ParamSet::new();
            let table = params.add(
                "emb",
                Tensor::rand_uniform([6, 4], -0.5, 0.5, &mut rng),
            );
            let ext = ExtractorParams::new(kind, 4, 3, &mut params, &mut rng);
            let mut g = Graph::new();
            let e = g.embedding(&params, table, &[1, 2, 0, 3, 4, 5]);
            let e = g.reshape(e, [2, 3, 4]);
            let mask = vec![1., 1., 0., 1., 1., 1.];
            let mv = g.constant(Tensor::from_vec([6], mask.clone()));
            let e = g.scale_rows(e, mv);
            let out = ext.forward(&mut g, &params, e, &mask);
            let sq = g.mul(out, out);
            let loss = g.mean_all(sq);
            g.backward(loss);
            // embedding rows that appear unpadded must receive gradient
            let sg = g.sparse_grads();
            assert!(
                sg.values().next().map(|s| s.touched() > 0).unwrap_or(false),
                "{}: no embedding gradient",
                kind.label()
            );
        }
    }
}
