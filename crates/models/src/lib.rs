//! # unimatch-models
//!
//! Two-tower architectures for the UniMatch framework (Fig. 2 of the
//! paper): a shared item-embedding lookup table, a user encoder built from
//! a context extractor (Youtube-DNN / CNN / GRU / LSTM / Transformer) and a
//! sequence aggregator (mean / last / max / attention pooling), and an item
//! encoder that reads the lookup table directly. Tower outputs are
//! L2-normalized and compared via a temperature-scaled dot product
//! (Eq. 13), keeping the towers separable for ANN serving.
//!
//! ```
//! use rand::SeedableRng;
//! use unimatch_data::SeqBatch;
//! use unimatch_models::{ModelConfig, TwoTower};
//! use unimatch_tensor::Graph;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = TwoTower::new(ModelConfig::youtube_dnn_mean(100, 8, 0.2), &mut rng);
//!
//! let history = vec![3u32, 17, 42];
//! let batch = SeqBatch::from_histories(&[&history], 8);
//! let mut g = Graph::new();
//! let user = model.user_tower(&mut g, &batch);
//! let items = model.item_tower(&mut g, &[7, 9]);
//! let logits = model.inbatch_logits(&mut g, user, items);
//! assert_eq!(g.value(logits).shape().dims(), &[1, 2]);
//! ```

#![warn(missing_docs)]

pub mod aggregators;
pub mod config;
pub mod extractors;
pub mod two_tower;

pub use aggregators::AggregatorParams;
pub use config::{Aggregator, ContextExtractor, ModelConfig};
pub use extractors::ExtractorParams;
pub use two_tower::TwoTower;
