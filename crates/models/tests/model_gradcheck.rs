//! Finite-difference gradient checks of COMPLETE models: every (extractor,
//! aggregator) cell of Tab. XII, end to end through embedding → context →
//! pooling → normalization → in-batch loss. If these pass, any training
//! configuration the experiments use is differentiating correctly.

use rand::SeedableRng;
use unimatch_data::SeqBatch;
use unimatch_models::{Aggregator, ContextExtractor, ModelConfig, TwoTower};
use unimatch_tensor::check::gradcheck;

fn check_cell(extractor: ContextExtractor, aggregator: Aggregator) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let cfg = ModelConfig {
        num_items: 7,
        embed_dim: 4,
        max_seq_len: 3,
        extractor,
        aggregator,
        temperature: 0.4,
        normalize: true,
    };
    let mut model = TwoTower::new(cfg.clone(), &mut rng);
    let h1 = vec![1u32, 2];
    let h2 = vec![3u32, 4, 5];
    let batch = SeqBatch::from_histories(&[&h1, &h2], 3);
    let items = [0u32, 6];

    // rebuild an identical-architecture shadow around each perturbed
    // ParamSet: ids are deterministic by construction order
    let template = TwoTower::new(cfg.clone(), &mut rand::rngs::StdRng::seed_from_u64(31));
    let _ = template;
    gradcheck(&mut model.params, 5e-2, 5e-2, move |g, p| {
        let mut shadow =
            TwoTower::new(cfg.clone(), &mut rand::rngs::StdRng::seed_from_u64(31));
        shadow.params = p.clone();
        let users = shadow.user_tower(g, &batch);
        let item_vs = shadow.item_tower(g, &items);
        let logits = shadow.inbatch_logits(g, users, item_vs);
        let ls = g.log_softmax(logits);
        let d = g.diag(ls);
        let m = g.mean_all(d);
        g.scale(m, -1.0)
    });
}

#[test]
fn gradcheck_youtube_dnn_cells() {
    for agg in Aggregator::ALL {
        if agg == Aggregator::Max {
            continue; // max pooling is not finite-difference friendly
        }
        check_cell(ContextExtractor::YoutubeDnn, agg);
    }
}

#[test]
fn gradcheck_cnn_cells() {
    for agg in [Aggregator::Mean, Aggregator::Attention] {
        check_cell(ContextExtractor::Cnn { kernel: 3 }, agg);
    }
}

#[test]
fn gradcheck_gru_cells() {
    for agg in [Aggregator::Mean, Aggregator::Last] {
        check_cell(ContextExtractor::Gru, agg);
    }
}

#[test]
fn gradcheck_lstm_cells() {
    for agg in [Aggregator::Mean, Aggregator::Last] {
        check_cell(ContextExtractor::Lstm, agg);
    }
}

#[test]
fn gradcheck_transformer_cells() {
    for agg in [Aggregator::Mean, Aggregator::Attention] {
        check_cell(ContextExtractor::Transformer, agg);
    }
}
